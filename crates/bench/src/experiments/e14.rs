//! E14 — the durability tax and the recovery bill.
//!
//! PR 8's tentpole measured: what does write-ahead logging cost a live
//! daemon, and what does replaying it cost a rebooting one?
//!
//! **Part 1 — contact throughput per fsync policy.** A plain source
//! node seeds waves of writes; a sink daemon pulls each wave over a
//! real socket. The sink runs four ways: WAL off, and WAL on under each
//! fsync policy (`never`, `interval` — the 50 ms default — and
//! `always`). Every committed contact appends one WAL record *before*
//! the pull is acknowledged, so the wall-clock premium over the WAL-off
//! run is exactly the durability tax. Convergence is asserted per run
//! (sink digest == source digest), and in release builds the headline
//! acceptance bar is asserted too: `interval` costs at most 1.3× the
//! WAL-off wall-clock.
//!
//! **Part 2 — recovery time vs log length.** A log of N single-key
//! records (no checkpoint, the worst case) is written through
//! [`Persist`], the process "dies" (the handle drops), and
//! [`Persist::open`] replays it cold. The replayed store's digest must
//! equal the writer's, every record must apply, and the reported replay
//! time is the boot-latency bill an operator pays for skipping
//! checkpoints — the number that justifies `--checkpoint-ms`.
//!
//! Release runs drive 40 waves × 100 keys and logs up to 50k records;
//! debug/test runs scale down without changing what is asserted.

use crate::table::{ratio, Table};
use optrep_core::obs::{FamilyValue, MetricsSnapshot};
use optrep_core::SiteId;
use optrep_net::ConnectOptions;
use optrep_server::{DurabilityConfig, FsyncPolicy, Node, NodeConfig, Persist};
use std::path::PathBuf;
use std::time::{Duration, Instant};

#[cfg(not(debug_assertions))]
const WAVES: usize = 40;
#[cfg(debug_assertions)]
const WAVES: usize = 8;

#[cfg(not(debug_assertions))]
const KEYS_PER_WAVE: usize = 100;
#[cfg(debug_assertions)]
const KEYS_PER_WAVE: usize = 25;

/// Bulky enough that a wave spans many frames, small enough that the
/// WAL-off baseline is not pure memcpy.
const VALUE_BYTES: usize = 256;

/// Replayed log lengths for part 2.
#[cfg(not(debug_assertions))]
const LOG_LENGTHS: &[usize] = &[1_000, 10_000, 50_000];
#[cfg(debug_assertions)]
const LOG_LENGTHS: &[usize] = &[200, 1_000];

/// Distinct keys the part-2 log cycles over: replay applies every
/// record, but the final store stays bounded (the realistic hot-key
/// shape, and it keeps digest verification cheap).
const LOG_KEYS: usize = 512;

fn connect_options() -> ConnectOptions {
    ConnectOptions::new()
        .attempts(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(8))
        .timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "optrep-e14-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn counter(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .families
        .iter()
        .find(|f| f.name == name)
        .map_or(0, |f| match f.value {
            FamilyValue::Counter(v) | FamilyValue::Gauge(v) => v,
            FamilyValue::Histogram(_) => 0,
        })
}

/// One sink configuration: WAL off (`None`) or on under a policy.
struct PolicyRun {
    label: &'static str,
    elapsed: Duration,
    wal_bytes: u64,
    wal_records: u64,
    fsyncs: u64,
}

fn run_policy(label: &'static str, fsync: Option<FsyncPolicy>) -> PolicyRun {
    let dir = scratch_dir(label);
    let source = Node::start(
        NodeConfig::new(SiteId::new(1), "127.0.0.1:0".parse().expect("loopback"))
            .with_connect(connect_options()),
    )
    .expect("source starts");
    let mut sink_config = NodeConfig::new(SiteId::new(0), "127.0.0.1:0".parse().expect("loopback"))
        .with_connect(connect_options());
    if let Some(policy) = fsync {
        sink_config = sink_config.with_durability(DurabilityConfig::new(&dir).with_fsync(policy));
    }
    let sink = Node::start(sink_config).expect("sink starts");

    // Only the pulls are timed: seeding the source is workload setup,
    // not contact cost. Each pull commits one whole wave as one WAL
    // record on the sink before the contact is acknowledged.
    let mut elapsed = Duration::ZERO;
    for wave in 0..WAVES {
        source.with_store(|s| {
            for k in 0..KEYS_PER_WAVE {
                s.put(format!("w{wave:03}k{k:03}"), vec![wave as u8; VALUE_BYTES]);
            }
        });
        let start = Instant::now();
        sink.sync_with(source.addr()).expect("contact commits");
        elapsed += start.elapsed();
    }
    assert_eq!(
        sink.digest(),
        source.digest(),
        "{label}: sink did not converge on the source"
    );

    let snapshot = sink.metrics_snapshot();
    let run = PolicyRun {
        label,
        elapsed,
        wal_bytes: counter(&snapshot, "optrep_wal_bytes_total"),
        wal_records: counter(&snapshot, "optrep_wal_records_total"),
        fsyncs: counter(&snapshot, "optrep_wal_fsyncs_total"),
    };
    if fsync.is_some() {
        assert_eq!(
            run.wal_records, WAVES as u64,
            "{label}: each contact must commit exactly one WAL record"
        );
    }
    sink.stop();
    source.stop();
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// One part-2 row: write a `records`-long log, reopen, measure replay.
struct RecoveryRun {
    records: usize,
    wal_bytes: u64,
    replay: Duration,
}

fn run_recovery(records: usize) -> RecoveryRun {
    let dir = scratch_dir("recover");
    let config = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
    let site = SiteId::new(0);
    let (mut persist, mut store, _) = Persist::open(&config, site).expect("open");
    for i in 0..records {
        let key = format!("k{:04}", i % LOG_KEYS);
        store.put(key.clone(), vec![(i % 251) as u8; 64]);
        let entry = store.encode_entry(&key).expect("tracked");
        persist.append(&[(key, entry)]).expect("append");
    }
    let wal_bytes = persist.wal_len();
    let digest = store.replica_digest();
    drop(persist); // the "crash": nothing checkpointed, the log is all there is

    let (_, recovered, report) = Persist::open(&config, site).expect("replay");
    assert_eq!(
        report.wal_records_applied, records as u64,
        "replay must apply every record"
    );
    assert!(!report.torn_tail, "clean log replayed as torn");
    assert_eq!(
        recovered.replica_digest(),
        digest,
        "replay of {records} records diverged from the writer"
    );
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRun {
        records,
        wal_bytes,
        replay: report.elapsed,
    }
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut t1 = Table::new(
        "E14a: contact throughput vs fsync policy (WAL tax on committed pulls)",
        &[
            "policy",
            "waves",
            "keys/wave",
            "contact ms",
            "vs off",
            "wal KiB",
            "records",
            "fsyncs",
        ],
    );
    let runs = [
        run_policy("off", None),
        run_policy("never", Some(FsyncPolicy::Never)),
        run_policy(
            "interval",
            Some(FsyncPolicy::parse("interval").expect("default interval policy")),
        ),
        run_policy(
            "always",
            Some(FsyncPolicy::parse("always").expect("always")),
        ),
    ];
    let baseline = runs[0].elapsed.as_secs_f64();
    for run in &runs {
        t1.row([
            run.label.to_string(),
            WAVES.to_string(),
            KEYS_PER_WAVE.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            ratio(run.elapsed.as_secs_f64(), baseline),
            format!("{:.0}", run.wal_bytes as f64 / 1024.0),
            run.wal_records.to_string(),
            run.fsyncs.to_string(),
        ]);
    }
    // The acceptance bar: at the default `interval` policy the WAL
    // costs at most 1.3x the WAL-off wall-clock. Release-only — debug
    // builds measure the compiler, not the log.
    #[cfg(not(debug_assertions))]
    {
        let interval = runs[2].elapsed.as_secs_f64();
        assert!(
            interval <= baseline * 1.3,
            "fsync=interval contact wall-clock {:.1}ms exceeds 1.3x the \
             WAL-off baseline {:.1}ms",
            interval * 1e3,
            baseline * 1e3,
        );
    }
    t1.note("sink digest == source digest asserted for every policy");
    t1.note("one WAL record per committed contact (asserted); 'off' rows log nothing");
    #[cfg(not(debug_assertions))]
    t1.note("asserted: interval wall-clock <= 1.3x the WAL-off baseline");

    let mut t2 = Table::new(
        "E14b: cold recovery time vs WAL length (no checkpoint, worst case)",
        &["records", "wal KiB", "replay ms", "krec/s"],
    );
    for &records in LOG_LENGTHS {
        let run = run_recovery(records);
        let secs = run.replay.as_secs_f64().max(1e-9);
        t2.row([
            run.records.to_string(),
            format!("{:.0}", run.wal_bytes as f64 / 1024.0),
            format!("{:.2}", secs * 1e3),
            format!("{:.0}", run.records as f64 / secs / 1e3),
        ]);
    }
    t2.note("replay applies every record and lands on the writer's digest (asserted)");
    t2.note("checkpoints exist to bound this column: a fresh snapshot replays wal 0");
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn durability_tax_and_recovery_scale() {
        // The asserts inside `run` are the test.
        let tables = super::run();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 4);
        assert_eq!(tables[1].len(), super::LOG_LENGTHS.len());
    }
}
