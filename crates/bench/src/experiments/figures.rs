//! F1/F2/F3 — the paper's Figures 1–3, regenerated from the scripted
//! scenario in `optrep-workloads`.

use crate::table::Table;
use optrep_core::graph::sync_graph;
use optrep_core::RotatingVector;
use optrep_workloads::FigureScenario;

/// F1: the replication graph's vectors θ1 … θ9.
pub fn run_f1() -> Vec<Table> {
    let fig = FigureScenario::build();
    let mut table = Table::new(
        "F1: Figure 1 — replication-graph vectors (zero elements omitted)",
        &["node", "vector", "paper"],
    );
    let paper = [
        "⟨A:1⟩",
        "⟨B:1, A:1⟩",
        "⟨C:1, B:1, A:1⟩",
        "⟨E:1, A:1⟩",
        "⟨F:1, E:1, A:1⟩",
        "⟨G:1, F:1, E:1, A:1⟩",
        "⟨G:1, F:1, E:1, B:1, A:1⟩",
        "⟨H:1, G:1, F:1, E:1, B:1, A:1⟩",
        "⟨C:1, H:1, G:1, F:1, E:1, B:1, A:1⟩",
    ];
    for k in 1..=9 {
        let rendered = format!(
            "⟨{}⟩",
            fig.theta(k)
                .iter()
                .map(|e| format!("{}:{}", e.site, e.value))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert_eq!(rendered, paper[k - 1], "θ{k} must match the paper");
        table.row([format!("θ{k}"), rendered, paper[k - 1].to_string()]);
    }
    table.note("every vector equals the paper's, produced by real updates and SYNCS runs");
    vec![table]
}

/// F2: the CRG segments and the §4 worked example.
pub fn run_f2() -> Vec<Table> {
    let fig = FigureScenario::build();
    let mut segs = Table::new(
        "F2: Figure 2 — θ9's prefixing segments",
        &["segment", "elements"],
    );
    for (i, seg) in fig.theta(9).segments().iter().enumerate() {
        segs.row([
            format!("s{i}"),
            seg.iter()
                .map(|e| format!("{}:{}", e.site, e.value))
                .collect::<Vec<_>>()
                .join(", "),
        ]);
    }
    segs.note(
        "paper draws ⟨C⟩⟨H⟩⟨G,F,E⟩⟨B⟩⟨A⟩; single-parent chains fuse here (skip-safe, smaller γ)",
    );

    let (merged, report) = fig.sync_theta9_into_theta7();
    let mut example = Table::new(
        "F2: §4 worked example — SYNCS_θ9(θ7)",
        &["quantity", "measured", "paper"],
    );
    example.row([
        "elements sent".to_string(),
        report.elements_sent.to_string(),
        "4 (C, H, G, B)".to_string(),
    ]);
    example.row([
        "|Δ|".to_string(),
        report.receiver.delta.to_string(),
        "2 (C, H)".to_string(),
    ]);
    example.row([
        "|Γ|".to_string(),
        report.receiver.gamma.to_string(),
        "2 (G, B received but known)".to_string(),
    ]);
    example.row([
        "γ (skips)".to_string(),
        report.receiver.skips.to_string(),
        "1 (tail of ⟨G,F,E⟩)".to_string(),
    ]);
    example.row([
        "result values".to_string(),
        format!("{}", merged.to_version_vector()),
        "θ9's values".to_string(),
    ]);
    vec![segs, example]
}

/// F3: causal-graph synchronization between sites A and C.
pub fn run_f3() -> Vec<Table> {
    let fig = FigureScenario::build();
    let mut table = Table::new(
        "F3: Figure 3 — SYNCG from site A's graph (1,2,4-7) into site C's (1,4-6)",
        &["quantity", "measured", "paper"],
    );
    let mut c = fig.graph_site_c.clone();
    let report = sync_graph(&mut c, &fig.graph_site_a).expect("figure 3 sync");
    table.row([
        "nodes transferred".to_string(),
        report.nodes_sent.to_string(),
        "4: missing {7,2} + one overlap per branch {6,1}".to_string(),
    ]);
    table.row([
        "nodes added".to_string(),
        report.nodes_added.to_string(),
        "2 (nodes 7 and 2)".to_string(),
    ]);
    table.row([
        "redundant overlaps".to_string(),
        report.redundant_nodes.to_string(),
        "2 (one per abandoned branch)".to_string(),
    ]);
    table.row([
        "skipto messages".to_string(),
        report.skiptos.to_string(),
        "abort requests per branch".to_string(),
    ]);
    table.row([
        "union size".to_string(),
        c.len().to_string(),
        "6 nodes".to_string(),
    ]);
    assert!(c.contains_graph(&fig.graph_site_a));
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn figures_regenerate() {
        assert!(!super::run_f1().is_empty());
        assert!(!super::run_f2().is_empty());
        assert!(!super::run_f3().is_empty());
    }
}
