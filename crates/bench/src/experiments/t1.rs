//! T1 — Table 1 of the paper: the notation, measured live.
//!
//! The paper's Table 1 defines `n`, `m`, `Δ`, `Γ` and γ. This experiment
//! replays a random trace with every scheme and reports the measured
//! value of each quantity, cross-checking that the byte counters move
//! with them (e.g. Γ = 0 whenever no reconciliation ever happened).

use crate::table::Table;
use optrep_core::{Crv, Srv, VersionVector};
use optrep_replication::ReplicaMeta;
use optrep_workloads::trace::{replay, TraceConfig};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let cfg = TraceConfig {
        sites: 16,
        events: 1500,
        update_fraction: 0.4,
        seed: 11,
        ..TraceConfig::default()
    };
    let events = cfg.generate();

    let mut table = Table::new(
        "T1: Table 1 notation, measured over one random trace (n=16, 1500 events)",
        &[
            "scheme",
            "n (sites)",
            "m (max updates/site)",
            "Σ|Δ|",
            "Σ|Γ|",
            "Σγ (skips)",
            "meta bytes",
        ],
    );

    fn row<M: ReplicaMeta>(
        table: &mut Table,
        sites: u32,
        events: &[optrep_workloads::trace::Event],
    ) {
        let (cluster, stats) = replay::<M>(sites, events).expect("replay");
        let object = optrep_replication::ObjectId::new(0);
        let m = (0..sites)
            .filter_map(|i| {
                cluster
                    .site(optrep_core::SiteId::new(i))
                    .replica(object)
                    .map(|r| r.meta.values().iter().map(|(_, v)| v).max().unwrap_or(0))
            })
            .max()
            .unwrap_or(0);
        table.row([
            M::NAME.to_string(),
            sites.to_string(),
            m.to_string(),
            stats.cluster.delta_total.to_string(),
            stats.cluster.gamma_total.to_string(),
            stats.cluster.skips_total.to_string(),
            stats.cluster.meta_bytes.to_string(),
        ]);
    }

    row::<Crv>(&mut table, cfg.sites, &events);
    row::<Srv>(&mut table, cfg.sites, &events);
    row::<VersionVector>(&mut table, cfg.sites, &events);
    table.note("Δ = {i : b[i] > a[i]}; Γ = known elements still received; γ = skipped segments");
    table.note("FULL's Γ counts every element outside Δ — the whole vector travels each sync");
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn produces_three_rows() {
        let tables = super::run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
    }
}
