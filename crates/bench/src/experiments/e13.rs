//! E13 — what daemon-native metrics cost, and that they count right.
//!
//! PR 7's acceptance experiment. The same loopback hypercube cluster as
//! E12 runs twice: once with the daemons' event-driven `MetricsSink`
//! disabled (`NodeConfig::with_metrics_events(false)` — the gauges and
//! runtime histograms stay live, only the per-event families go quiet),
//! and once with it on *plus* a plain [`CounterSink`] installed on the
//! pulling thread as an independent witness. Two things come out:
//!
//! * **Overhead** — the metrics-on / metrics-off wall-clock ratio for
//!   the identical pull schedule. The target is ≤ 1.05×: a histogram
//!   `record` is two relaxed atomic adds, and the sink's only lock is
//!   the tiny in-flight contact map. As with the obs experiment, the
//!   ratio is reported, not asserted — CI timing is too noisy for a
//!   hard gate; EXPERIMENTS.md records representative runs.
//! * **Exactness** — asserted, not reported: summed over all daemons,
//!   the `optrep_contact_micros` histogram holds exactly one sample
//!   per contact the witness counted, and the four per-plane byte
//!   counters equal the witness's byte totals to the byte. Histograms
//!   approximate *values* (log2 buckets), never *counts*.
//!
//! Release runs drive 64 daemons; debug/test runs scale down to 16
//! (CI's `tables e13` job) without changing what is asserted.

use crate::table::{ratio, Table};
use optrep_core::obs::{self, CounterSink, MetricsSnapshot};
use optrep_core::SiteId;
use optrep_net::ConnectOptions;
use optrep_server::{Node, NodeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon counts per row; powers of two so the hypercube is exact.
#[cfg(not(debug_assertions))]
const CLUSTERS: &[usize] = &[64];
#[cfg(debug_assertions)]
const CLUSTERS: &[usize] = &[16];

/// Seeded keys per site before each sweep wave.
const KEYS_PER_SITE: usize = 2;

fn connect_options() -> ConnectOptions {
    ConnectOptions::new()
        .attempts(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(8))
        .timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
}

/// One cluster run: wall-clock of the pull schedule plus the per-node
/// metrics snapshots taken after convergence.
struct ClusterRun {
    elapsed: Duration,
    contacts: u64,
    snapshots: Vec<MetricsSnapshot>,
}

/// Stands up `daemons` nodes, seeds two write waves, and pulls along
/// the hypercube schedule until converged — E12's schedule minus the
/// in-memory mirrors, so the measured time is all daemon.
fn run_cluster(daemons: usize, metrics_events: bool) -> ClusterRun {
    assert!(daemons.is_power_of_two() && daemons >= 2);
    let bits = daemons.trailing_zeros() as usize;
    let nodes: Vec<Node> = (0..daemons)
        .map(|i| {
            let config = NodeConfig::new(
                SiteId::new(i as u32),
                "127.0.0.1:0".parse().expect("loopback"),
            )
            .with_connect(connect_options())
            .with_metrics_events(metrics_events);
            Node::start(config).expect("daemon starts")
        })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = nodes.iter().map(Node::addr).collect();

    let seed = |wave: usize, site: usize, node: &Node| {
        node.with_store(|s| {
            for k in 0..KEYS_PER_SITE {
                s.put(
                    format!("w{wave}s{site:04}k{k}"),
                    format!("wave-{wave} value {k} from site {site}"),
                );
            }
        });
    };
    for (site, node) in nodes.iter().enumerate() {
        seed(0, site, node);
    }

    let mut elapsed = Duration::ZERO;
    for wave in 0..2 {
        if wave == 1 {
            for (site, node) in nodes.iter().enumerate() {
                seed(1, site, node);
            }
        }
        for round in 0..bits {
            for (dst, node) in nodes.iter().enumerate() {
                let src = dst ^ (1 << round);
                let start = Instant::now();
                node.sync_with(addrs[src]).expect("tcp pull");
                elapsed += start.elapsed();
            }
        }
    }

    let reference = nodes[0].digest();
    for (site, node) in nodes.iter().enumerate() {
        assert_eq!(node.digest(), reference, "daemon {site} did not converge");
    }
    let mut contacts = 0u64;
    for node in &nodes {
        contacts += node.conn_totals().contacts;
    }
    let snapshots: Vec<MetricsSnapshot> = nodes.iter().map(Node::metrics_snapshot).collect();
    for node in nodes {
        node.stop();
    }
    ClusterRun {
        elapsed,
        contacts,
        snapshots,
    }
}

/// Sums one counter family across all snapshots.
fn sum_counter(snapshots: &[MetricsSnapshot], name: &str) -> u64 {
    snapshots.iter().filter_map(|s| s.counter(name)).sum()
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E13: metrics cost and exactness (MetricsSink+histograms vs metrics-off, \
         CounterSink witness)",
        &[
            "daemons",
            "contacts",
            "off ms",
            "on ms",
            "on/off",
            "hist samples",
            "hist bytes",
            "witness bytes",
        ],
    );
    for &daemons in CLUSTERS {
        let off = run_cluster(daemons, false);
        let witness = Arc::new(CounterSink::new());
        let on = obs::with(Arc::clone(&witness) as Arc<dyn obs::Sink>, || {
            run_cluster(daemons, true)
        });
        assert_eq!(
            on.contacts, off.contacts,
            "the two runs pulled different schedules"
        );

        // Exactness: summed over the cluster, the contact-latency
        // histogram carries one sample per contact and the per-plane
        // byte counters agree with the independent witness — exactly.
        let counted = witness.snapshot();
        let hist_samples: u64 = on
            .snapshots
            .iter()
            .filter_map(|s| s.histogram("optrep_contact_micros"))
            .map(|h| h.count)
            .sum();
        let hist_bytes: u64 = [
            "optrep_compare_bytes_total",
            "optrep_meta_bytes_total",
            "optrep_framing_bytes_total",
            "optrep_payload_bytes_total",
        ]
        .iter()
        .map(|name| sum_counter(&on.snapshots, name))
        .sum();
        let witness_bytes = counted.compare_bytes
            + counted.meta_bytes
            + counted.framing_bytes
            + counted.payload_bytes;
        if cfg!(feature = "obs") {
            assert_eq!(
                hist_samples, counted.contacts,
                "contact histogram and CounterSink disagree on contact count"
            );
            assert_eq!(
                hist_samples, on.contacts,
                "contact histogram and the pools disagree on contact count"
            );
            assert_eq!(
                hist_bytes, witness_bytes,
                "metric byte counters and CounterSink disagree"
            );
            // The off run's event families stay silent: that is what the
            // baseline is a baseline of.
            assert_eq!(
                sum_counter(&off.snapshots, "optrep_contacts_total"),
                0,
                "metrics-off daemons still fed event families"
            );
        }

        t.row([
            daemons.to_string(),
            on.contacts.to_string(),
            format!("{:.1}", off.elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", on.elapsed.as_secs_f64() * 1e3),
            ratio(on.elapsed.as_secs_f64(), off.elapsed.as_secs_f64()),
            hist_samples.to_string(),
            hist_bytes.to_string(),
            witness_bytes.to_string(),
        ]);
    }
    t.note("hist samples == witness contacts == pool contacts; hist bytes == witness bytes (asserted, obs builds)");
    t.note("on/off is the MetricsSink+histogram premium on the identical pull schedule; target <= 1.05x (reported, not asserted: CI timing is too noisy for a hard gate)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn metrics_count_exactly_and_cheaply() {
        // The asserts inside `run` are the test.
        let tables = super::run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), super::CLUSTERS.len());
    }
}
