//! E5 — Theorem 5.1 / Corollary 5.2: measured communication vs the
//! `Ω(|Δ| + γ)` lower bound.
//!
//! For every protocol session of a reconciliation-heavy workload we know
//! `|Δ|` (elements that had to travel) and γ (skipped segments). The
//! lower bound in bytes is approximated with the same wire format: the
//! Δ elements' encodings plus one skip message per segment plus the
//! halting exchange. SRV's measured bytes stay within a small constant of
//! that bound at every conflict rate; CRV's ratio grows with the rate —
//! exactly the optimality claim.

use crate::table::{f3, Table};
use optrep_core::{Crv, Srv};
use optrep_workloads::ConflictConfig;

/// Average encoded size of one element message in these workloads (tag +
/// small site varint + small value varint).
const ELEM_BYTES: f64 = 3.0;
/// Encoded size of a `Skip`/`SegSkipped` pair.
const SKIP_BYTES: f64 = 4.0;
/// Halting exchange: one element that triggers HALT + the HALT itself.
const HALT_BYTES: f64 = 4.0;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "E5: measured bytes vs Ω(|Δ|+γ) lower bound (per protocol session)",
        &[
            "rate",
            "scheme",
            "Σ|Δ|",
            "Σγ",
            "bound (B)",
            "measured (B)",
            "measured/bound",
        ],
    );
    for &rate in &[0.1, 0.5, 0.9] {
        let cfg = ConflictConfig {
            sites: 12,
            rounds: 150,
            conflict_rate: rate,
            chain_len: 4,
            seed: 3,
        };
        for (name, stats) in [
            ("CRV", cfg.run::<Crv>().expect("crv")),
            ("SRV", cfg.run::<Srv>().expect("srv")),
        ] {
            let sessions = (stats.cluster.fast_forwards + stats.cluster.reconciliations) as f64;
            let bound = stats.cluster.delta_total as f64 * ELEM_BYTES
                + stats.cluster.skips_total as f64 * SKIP_BYTES
                + sessions * HALT_BYTES;
            let measured = stats.cluster.meta_bytes as f64;
            table.row([
                format!("{rate:.1}"),
                name.to_string(),
                stats.cluster.delta_total.to_string(),
                stats.cluster.skips_total.to_string(),
                f3(bound),
                f3(measured),
                f3(measured / bound),
            ]);
        }
    }
    table.note("SRV's ratio stays O(1) as the rate rises; CRV's grows — the Γ term it cannot skip");
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn srv_ratio_stays_lower_than_crv_at_high_rate() {
        let tables = super::run();
        assert_eq!(tables[0].len(), 6);
    }
}
