//! A1/A2 — ablations of the two design choices the paper's optimality
//! rests on: the rotation order and the segment bits.

use crate::table::{f3, Table};
use optrep_core::{Crv, RotatingVector, SiteId, Srv};
use optrep_workloads::ConflictConfig;

/// A1 — what the rotation order buys.
///
/// `SYNCB` can stop after the first element the receiver already knows
/// *because* elements arrive most-recent-first. Without the maintained
/// order (elements in an arbitrary fixed order), the sender cannot stop
/// before the last element that happens to be new to the receiver — on
/// average nearly the whole vector. The ablation measures, for diverged
/// pairs, how many elements each strategy must transfer.
pub fn run_a1() -> Vec<Table> {
    let mut table = Table::new(
        "A1: ablation — rotate-to-front order vs arbitrary element order",
        &[
            "n",
            "|Δ|",
            "ordered elements sent",
            "unordered elements needed",
            "unordered/ordered",
        ],
    );
    for &(n, d) in &[(32u32, 1u32), (128, 4), (1024, 4), (1024, 64)] {
        // Legal divergence: shared chain, then d fresh updates on b.
        let mut a = Srv::new();
        for i in 0..n {
            RotatingVector::record_update(&mut a, SiteId::new(i));
        }
        let mut b = a.clone();
        for i in 0..d {
            RotatingVector::record_update(&mut b, SiteId::new(i));
        }
        let report = optrep_core::sync::drive::sync_srv(&mut a.clone(), &b).expect("sync");
        let ordered = report.elements_sent;

        // Without the order: elements stream in a fixed arbitrary order
        // (say descending site id); the receiver cannot halt before the
        // last element that is new to it. The fresh sites 0..d sit at the
        // very end of that order, so the whole vector must cross.
        let unordered = n as usize;
        table.row([
            n.to_string(),
            d.to_string(),
            ordered.to_string(),
            unordered.to_string(),
            f3(unordered as f64 / ordered as f64),
        ]);
    }
    table.note("the order is what lets SYNC* stop after |Δ|+1 elements; without it, Ω(n)");
    vec![table]
}

/// A2 — what the segment bits buy.
///
/// Running the identical conflict workload with CRV (no segment bits) and
/// SRV isolates the contribution of skipping: same Δ, same conflicts,
/// different Γ and bytes.
pub fn run_a2() -> Vec<Table> {
    let mut table = Table::new(
        "A2: ablation — segment bits on/off (identical workload)",
        &[
            "chain len",
            "Γ without bits (CRV)",
            "Γ with bits (SRV)",
            "γ",
            "bytes without",
            "bytes with",
        ],
    );
    for &chain in &[1u32, 2, 4, 8] {
        let cfg = ConflictConfig {
            sites: 12,
            rounds: 150,
            conflict_rate: 0.6,
            chain_len: chain,
            seed: 21,
        };
        let crv = cfg.run::<Crv>().expect("crv ablation");
        let srv = cfg.run::<Srv>().expect("srv ablation");
        table.row([
            chain.to_string(),
            crv.cluster.gamma_total.to_string(),
            srv.cluster.gamma_total.to_string(),
            srv.cluster.skips_total.to_string(),
            crv.cluster.meta_bytes.to_string(),
            srv.cluster.meta_bytes.to_string(),
        ]);
    }
    table.note("chain length 1 = singleton segments: bits buy nothing, exactly as §4.1 predicts");
    table.note("longer segments: each skip replaces a segment tail with one O(1) message");
    vec![table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_run() {
        assert_eq!(super::run_a1()[0].len(), 4);
        assert_eq!(super::run_a2()[0].len(), 4);
    }
}
