//! E8 — Multiplexed contacts: batching many-object anti-entropy over one
//! framed connection.
//!
//! A site hosting `n` objects pulls from a peer where only ~1% of the
//! objects have changed. Per-object sessions pay at least one comparison
//! round trip per object; the multiplexed contact batches every stream's
//! first element into a single `BatchHello`/`BatchServerFirst` exchange,
//! so the blocking depth is constant — one round trip for the comparison
//! plus one iff any stream transfers state — and the simulated wall-clock
//! over a 5 ms link collapses from `Ω(n·rtt)` to `O(rtt)`.

use crate::table::{ratio, Table};
use bytes::Bytes;
use optrep_core::{RotatingVector, SiteId, Srv};
use optrep_net::sim::{SimConfig, SimLink};
use optrep_replication::mux::{run_contact, BatchPullClient, BatchPullServer};
use optrep_replication::{PullClient, PullServer};

/// One-way latency of the simulated link: 5 ms.
const LATENCY_NS: u64 = 5_000_000;

/// Client-side `(name, vector)` and server-side `(name, vector, payload)`
/// object sets for one contact.
type Objects = (Vec<(Bytes, Srv)>, Vec<(Bytes, Srv, Bytes)>);

/// Builds `n` shared objects where the first `dirty` carry one extra
/// server-side update the client must pull.
fn scenario(n: usize, dirty: usize) -> Objects {
    let mut client = Vec::with_capacity(n);
    let mut server = Vec::with_capacity(n);
    for i in 0..n {
        let name = Bytes::from(format!("obj{i:05}").into_bytes());
        let mut v = Srv::new();
        for u in 0..(2 + i % 4) {
            v.record_update(SiteId::new((u % 6) as u32));
        }
        client.push((name.clone(), v.clone()));
        let mut sv = v;
        if i < dirty {
            sv.record_update(SiteId::new(9));
        }
        server.push((name, sv, Bytes::from(format!("state-{i}").into_bytes())));
    }
    (client, server)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let cfg = SimConfig::symmetric(LATENCY_NS, None);
    let mut t = Table::new(
        "E8: batched vs per-object anti-entropy, 1% dirty, 5 ms link",
        &[
            "n",
            "dirty",
            "rtts (batched)",
            "rtts (per-object)",
            "bytes (batched)",
            "bytes (per-object)",
            "wall-clock ms (batched)",
            "wall-clock ms (per-object)",
            "speedup",
        ],
    );
    for &n in &[16usize, 256, 1024] {
        let dirty = (n / 100).max(1);

        // Batched: byte/round-trip accounting from the lockstep engine,
        // wall-clock from the discrete-event simulator.
        let (c, s) = scenario(n, dirty);
        let mut client = BatchPullClient::new(c);
        let mut server = BatchPullServer::new(s);
        let contact = run_contact(&mut client, &mut server).expect("lockstep contact");
        let (c, s) = scenario(n, dirty);
        let mut link = SimLink::new(BatchPullClient::new(c), BatchPullServer::new(s), cfg);
        let batched = link.run().expect("batched contact over sim link");

        // Per-object: one dedicated connection per object on the same
        // link, run back to back.
        let (c, s) = scenario(n, dirty);
        let mut per_object_ns = 0u64;
        let mut per_object_bytes = 0u64;
        let mut per_object_rtts = 0u64;
        for ((_, cv), (_, sv, payload)) in c.into_iter().zip(s) {
            let transfers = cv.compare(&sv) != optrep_core::Causality::Equal;
            let mut link = SimLink::new(PullClient::new(cv), PullServer::new(sv, payload), cfg);
            let report = link.run().expect("per-object session");
            per_object_ns += report.duration_ns;
            per_object_bytes += (report.stats.bytes_ab + report.stats.bytes_ba) as u64;
            // Hello/ServerFirst always blocks; a transfer adds the
            // PayloadRequest/Payload exchange.
            per_object_rtts += 1 + u64::from(transfers);
        }

        let batched_ms = batched.duration_ns as f64 / 1e6;
        let per_object_ms = per_object_ns as f64 / 1e6;
        t.row([
            n.to_string(),
            dirty.to_string(),
            contact.round_trips.to_string(),
            per_object_rtts.to_string(),
            contact.total_bytes.to_string(),
            per_object_bytes.to_string(),
            format!("{batched_ms:.1}"),
            format!("{per_object_ms:.1}"),
            ratio(per_object_ms, batched_ms),
        ]);

        assert!(
            batched.duration_ns <= 3 * cfg.rtt(),
            "batched contact must stay within 3 round trips"
        );
        assert!(
            per_object_ns >= n as u64 * cfg.rtt(),
            "per-object sessions pay at least one rtt each"
        );
    }
    t.note(
        "batched blocking depth is constant in n: one comparison exchange + one transfer exchange",
    );
    t.note("per-object pays ≥ 1 rtt per object even when nothing changed (§3.1 pipelining only helps within a session)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn batched_round_trips_constant_in_n() {
        let tables = super::run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
    }
}
