//! Offline validator for Prometheus text exposition (format 0.0.4) as
//! `optrep metrics` renders it — what `tables --check-prom` and the CI
//! smoke script run against live daemon scrapes.
//!
//! Checked, per family:
//!
//! * every sample line is owned by a preceding `# TYPE` declaration and
//!   its value parses as an unsigned integer (every optrep metric is a
//!   count, a byte total or a microsecond total);
//! * counters and gauges carry exactly one sample, named exactly like
//!   the family;
//! * histograms carry cumulative `_bucket{le="..."}` samples with
//!   strictly increasing bounds and non-decreasing counts, ending in
//!   `le="+Inf"`, plus `_sum` and `_count` — and the `+Inf` bucket
//!   equals `_count` (the identity scrapers rely on).

use std::collections::BTreeSet;

/// One family mid-validation.
struct Family {
    name: String,
    kind: String,
    /// `(le, cumulative)` for histograms.
    buckets: Vec<(f64, u64)>,
    sum: Option<u64>,
    count: Option<u64>,
    /// Plain samples seen (counter/gauge).
    plain: u64,
}

impl Family {
    fn finish(&self) -> Result<(), String> {
        match self.kind.as_str() {
            "counter" | "gauge" => {
                if self.plain != 1 {
                    return Err(format!(
                        "family {}: {} has {} samples, want exactly 1",
                        self.name, self.kind, self.plain
                    ));
                }
            }
            "histogram" => {
                let (last, count) = match (self.buckets.last(), self.count) {
                    (Some(&(le, cum)), Some(count)) => ((le, cum), count),
                    _ => {
                        return Err(format!(
                            "family {}: histogram missing buckets or _count",
                            self.name
                        ))
                    }
                };
                if last.0 != f64::INFINITY {
                    return Err(format!(
                        "family {}: last bucket is not le=\"+Inf\"",
                        self.name
                    ));
                }
                if last.1 != count {
                    return Err(format!(
                        "family {}: +Inf bucket {} != _count {}",
                        self.name, last.1, count
                    ));
                }
                if self.sum.is_none() {
                    return Err(format!("family {}: histogram missing _sum", self.name));
                }
                for pair in self.buckets.windows(2) {
                    if pair[1].0 <= pair[0].0 {
                        return Err(format!(
                            "family {}: bucket bounds not strictly increasing",
                            self.name
                        ));
                    }
                    if pair[1].1 < pair[0].1 {
                        return Err(format!(
                            "family {}: cumulative bucket counts decreased",
                            self.name
                        ));
                    }
                }
            }
            other => return Err(format!("family {}: unknown type {other:?}", self.name)),
        }
        Ok(())
    }
}

fn parse_value(raw: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("non-integer sample value {raw:?}"))
}

/// Validates one exposition document, returning the family count.
///
/// # Errors
///
/// A one-line description of the first violated rule.
pub fn check(text: &str) -> Result<usize, String> {
    let mut families = 0usize;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut open: Option<Family> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            if let Some(family) = open.take() {
                family.finish()?;
            }
            let mut parts = decl.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind), None) => (name.to_string(), kind.to_string()),
                _ => return Err(format!("line {lineno}: malformed # TYPE line")),
            };
            if !seen.insert(name.clone()) {
                return Err(format!("line {lineno}: family {name} declared twice"));
            }
            families += 1;
            open = Some(Family {
                name,
                kind,
                buckets: Vec::new(),
                sum: None,
                count: None,
                plain: 0,
            });
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: unknown comment {line:?}"));
        }
        let Some(family) = open.as_mut() else {
            return Err(format!("line {lineno}: sample before any # TYPE line"));
        };
        let (sample, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no sample value"))?;
        let value = parse_value(value).map_err(|e| format!("line {lineno}: {e}"))?;
        if sample == family.name {
            family.plain += 1;
        } else if sample == format!("{}_sum", family.name) {
            if family.sum.replace(value).is_some() {
                return Err(format!("line {lineno}: duplicate _sum"));
            }
        } else if sample == format!("{}_count", family.name) {
            if family.count.replace(value).is_some() {
                return Err(format!("line {lineno}: duplicate _count"));
            }
        } else if let Some(le) = sample
            .strip_prefix(&format!("{}_bucket{{le=\"", family.name))
            .and_then(|rest| rest.strip_suffix("\"}"))
        {
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?
            };
            family.buckets.push((le, value));
        } else {
            return Err(format!(
                "line {lineno}: sample {sample:?} does not belong to family {}",
                family.name
            ));
        }
    }
    if let Some(family) = open.take() {
        family.finish()?;
    }
    if families == 0 {
        return Err("no metric families".to_string());
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::check;
    use optrep_core::obs::{MetricsRegistry, MetricsSink, MetricsSnapshot};

    #[test]
    fn a_live_registry_rendering_validates() {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let _sink = MetricsSink::new(&registry);
        registry.histogram("demo_micros").record(1234);
        registry.counter("demo_total").add(7);
        let text = registry.snapshot().to_prometheus();
        assert!(check(&text).expect("valid exposition") > 2);
    }

    #[test]
    fn empty_documents_are_rejected() {
        assert!(check("").is_err());
        assert!(check("\n\n").is_err());
    }

    #[test]
    fn stray_samples_and_bad_values_are_rejected() {
        assert!(check("x_total 3\n").is_err(), "sample before TYPE");
        assert!(
            check("# TYPE x counter\ny_total 3\n").is_err(),
            "foreign sample"
        );
        assert!(
            check("# TYPE x counter\nx nope\n").is_err(),
            "non-numeric value"
        );
        assert!(
            check("# TYPE x counter\nx 1\nx 2\n").is_err(),
            "duplicate sample"
        );
    }

    #[test]
    fn histogram_identities_are_enforced() {
        let good = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\n\
                    h_bucket{le=\"3\"} 5\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 9\nh_count 5\n";
        assert_eq!(check(good), Ok(1));
        let wrong_inf = good.replace("h_bucket{le=\"+Inf\"} 5", "h_bucket{le=\"+Inf\"} 6");
        assert!(check(&wrong_inf).is_err(), "+Inf != _count");
        let decreasing = good.replace("h_bucket{le=\"3\"} 5", "h_bucket{le=\"3\"} 1");
        assert!(check(&decreasing).is_err(), "cumulative counts decreased");
        let unordered = good.replace("le=\"3\"", "le=\"0.5\"");
        assert!(check(&unordered).is_err(), "bounds out of order");
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n";
        assert!(check(no_inf).is_err(), "missing +Inf bucket");
    }

    #[test]
    fn the_wire_decoded_snapshot_renders_validly_too() {
        // What `optrep metrics` actually prints: a snapshot that crossed
        // the verb protocol, not the daemon's in-process registry.
        let registry = MetricsRegistry::new();
        registry.histogram("roundtrip_micros").record(88);
        registry.counter("roundtrip_total").inc();
        let snapshot = registry.snapshot();
        let text = snapshot.to_prometheus();
        assert!(check(&text).is_ok());
        // An empty snapshot renders to an empty document — rejected, so
        // a daemon answering with no families fails the smoke test.
        assert!(check(&MetricsSnapshot::default().to_prometheus()).is_err());
    }
}
