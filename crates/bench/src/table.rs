//! Minimal fixed-width table rendering for experiment output.

use std::fmt;

/// A titled table with a header row, rendered with aligned columns.
///
/// ```
/// use optrep_bench::Table;
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(["1", "2"]);
/// let s = t.to_string();
/// assert!(s.contains("demo") && s.contains("1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a free-form footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Serializes the table as a JSON object
    /// (`{"title", "headers", "rows", "notes"}`), for machine-readable
    /// benchmark tracking across revisions.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        json_string(&mut out, &self.title);
        out.push_str(",\"headers\":");
        json_array(&mut out, &self.headers);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_array(&mut out, row);
        }
        out.push_str("],\"notes\":");
        json_array(&mut out, &self.notes);
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, item);
    }
    out.push(']');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(numer: f64, denom: f64) -> String {
    if denom == 0.0 {
        "—".to_string()
    } else {
        format!("{:.2}×", numer / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("title", &["col", "value"]);
        t.row(["aaa", "1"]).row(["b", "22"]).note("a note");
        let s = t.to_string();
        assert!(s.contains("== title =="));
        assert!(s.contains("aaa  1"));
        assert!(s.contains("note: a note"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.to_string().lines().count(), 4);
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(ratio(4.0, 2.0), "2.00×");
        assert_eq!(ratio(1.0, 0.0), "—");
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut t = Table::new("bench \"quoted\"", &["a", "b"]);
        t.row(["1", "x\\y"]).note("line\nbreak");
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"title\":\"bench \\\"quoted\\\"\",\"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x\\\\y\"]],\"notes\":[\"line\\nbreak\"]}"
        );
        assert_eq!(t.title(), "bench \"quoted\"");
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.notes().len(), 1);
    }
}
