//! Process-level crash-kill chaos: a real `optrepd` child killed with
//! SIGKILL — including *mid-contact* — must restart from its data dir
//! to exactly a state the replica passed through, never a partial
//! contact. The PR-3 stage-then-commit machinery made frame-level
//! deaths atomic in memory; the WAL extends the same contract across
//! process death, asserted here by `replica_digest` identity against a
//! never-killed in-process mirror.
//!
//! These tests drive the actual daemon binary (`CARGO_BIN_EXE_optrepd`)
//! because in-process nodes cannot be SIGKILLed: the kernel's notion of
//! "gone mid-write" is the thing under test.

#![cfg(unix)]

use optrep_core::SiteId;
use optrep_net::ConnectOptions;
use optrep_server::{Client, Node, NodeConfig};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn connect_opts() -> ConnectOptions {
    ConnectOptions::new()
        .attempts(3)
        .backoff(Duration::from_millis(2), Duration::from_millis(20))
        .timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "optrep-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One `optrepd` child process; killed (hard) on drop so a failing
/// assertion never leaks daemons.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns `optrepd` durable in `dir` with `fsync`, waits for its
    /// `listening on` line, and returns the handle plus bound address.
    fn spawn(site: &str, dir: &Path, fsync: &str) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_optrepd"))
            .args([
                "--site",
                site,
                "--listen",
                "127.0.0.1:0",
                "--data-dir",
                dir.to_str().expect("utf-8 temp path"),
                "--fsync",
                fsync,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("optrepd spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("optrepd exited before listening")
                .expect("read optrepd stdout");
            if let Some(rest) = line.split(" listening on ").nth(1) {
                break rest.trim().parse().expect("listen address parses");
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr, &connect_opts()).expect("client connects to daemon")
    }

    /// SIGKILL — the kernel yanks the process, nothing flushes.
    fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The never-killed mirror the daemon syncs from.
fn start_mirror(site: u32) -> Node {
    Node::start(
        NodeConfig::new(SiteId::new(site), "127.0.0.1:0".parse().expect("loopback"))
            .with_connect(connect_opts()),
    )
    .expect("mirror starts")
}

/// Deterministic half of the acceptance claim: with `fsync=always`, a
/// contact the daemon *acknowledged* survives SIGKILL outright — the
/// restarted daemon's digest equals the mirror's, not merely one of
/// two acceptable states.
#[test]
fn acked_contact_survives_sigkill_exactly() {
    let dir = scratch_dir("acked");
    let mirror = start_mirror(1);
    mirror.with_store(|s| {
        for i in 0..50 {
            s.put(format!("key{i}"), format!("value-{i}"));
        }
        s.delete("key7"); // tombstones cross the WAL too
    });
    let target = mirror.digest();

    let daemon = Daemon::spawn("A", &dir, "always");
    let mut client = daemon.client();
    client
        .sync(&mirror.addr().to_string())
        .expect("contact commits");
    assert_eq!(client.digest().expect("digest"), target);
    daemon.kill9();

    let revived = Daemon::spawn("A", &dir, "always");
    let mut client = revived.client();
    assert_eq!(
        client.digest().expect("digest after recovery"),
        target,
        "an acknowledged fsync=always contact must survive kill -9"
    );
    let status = client.status().expect("status");
    assert_eq!(status.keys, 49, "50 puts minus one tombstone");
    drop(revived);
    mirror.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Racing half: SIGKILL lands at staggered delays while a contact is
/// (possibly) in flight. Recovery must land on exactly one of the two
/// states the replica legitimately passed through — before the whole
/// contact, or after it — never between. The torn-tail rule plus
/// one-record-per-contact makes anything else impossible; this test
/// tries to catch that claim lying.
#[test]
fn sigkill_mid_contact_recovers_whole_contact_or_none() {
    let dir = scratch_dir("race");
    let mirror = start_mirror(1);
    let mut daemon = Some(Daemon::spawn("A", &dir, "always"));

    for (wave, delay_ms) in [0u64, 1, 2, 5, 10, 20].into_iter().enumerate() {
        // A fresh burst of mirror-side state for the contact to carry
        // (bulky values so the exchange spans many frames and the kill
        // window is wide).
        mirror.with_store(|s| {
            for i in 0..120 {
                s.put(format!("wave{wave}-key{i}"), vec![wave as u8; 1800]);
            }
        });
        let live = daemon.take().expect("daemon is running");
        let before = live.client().digest().expect("digest before contact");
        let after = mirror.digest();

        // Fire the contact from a side thread (its connection will die
        // with the daemon; any error is expected collateral)...
        let sync_addr = live.addr;
        let peer = mirror.addr().to_string();
        let contact = std::thread::spawn(move || {
            if let Ok(mut client) = Client::connect(sync_addr, &connect_opts()) {
                let _ = client.sync(&peer);
            }
        });
        // ...then SIGKILL the daemon while it is (maybe) mid-commit.
        std::thread::sleep(Duration::from_millis(delay_ms));
        live.kill9();
        let _ = contact.join();

        let revived = Daemon::spawn("A", &dir, "always");
        let recovered = revived.client().digest().expect("digest after recovery");
        assert!(
            recovered == before || recovered == after,
            "delay {delay_ms}ms: recovered digest {recovered:#x} is neither \
             pre-contact {before:#x} nor post-contact {after:#x} — a partial \
             contact leaked through recovery"
        );
        // Converge before the next wave so `before` stays meaningful.
        revived
            .client()
            .sync(&mirror.addr().to_string())
            .expect("catch-up contact");
        assert_eq!(revived.client().digest().expect("digest"), mirror.digest());
        daemon = Some(revived);
    }
    drop(daemon);
    mirror.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful half (the SIGTERM satellite): a polite kill checkpoints,
/// fsyncs, and exits 0; the restart replays an empty log. Verified
/// through the daemon's own stdout (`recovered ... wal ... applied 0`)
/// since that is the interface operators get.
#[test]
fn sigterm_checkpoints_and_exits_cleanly() {
    let dir = scratch_dir("term");
    let daemon = Daemon::spawn("A", &dir, "interval:10");
    let mut client = daemon.client();
    for i in 0..25 {
        client
            .put(&format!("key{i}"), &b"durable"[..])
            .expect("put");
    }
    let digest = client.digest().expect("digest");
    drop(client);

    // SIGTERM (15): Child::kill sends SIGKILL, so shell out.
    let pid = daemon.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
    let mut daemon = daemon;
    let exit = daemon.child.wait().expect("daemon exits");
    assert!(
        exit.success(),
        "graceful shutdown must exit 0, got {exit:?}"
    );
    std::mem::forget(daemon); // already reaped

    // Restart: everything is in the snapshot, nothing replays from WAL.
    let child = Command::new(env!("CARGO_BIN_EXE_optrepd"))
        .args([
            "--site",
            "A",
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("optrepd restarts");
    let mut revived = Daemon {
        child,
        addr: "127.0.0.1:1".parse().expect("placeholder"),
    };
    let stdout = revived.child.stdout.take().expect("stdout piped");
    let mut recovered_line = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.expect("read stdout");
        if line.contains(" recovered ") {
            recovered_line = Some(line.clone());
        }
        if let Some(rest) = line.split(" listening on ").nth(1) {
            revived.addr = rest.trim().parse().expect("listen address parses");
            break;
        }
    }
    let recovered = recovered_line.expect("durable daemon prints a recovered line");
    assert!(
        recovered.contains("wal 0 applied"),
        "graceful stop must leave an empty log, got: {recovered}"
    );
    assert_eq!(revived.client().digest().expect("digest"), digest);
    drop(revived);
    let _ = std::fs::remove_dir_all(&dir);
}
