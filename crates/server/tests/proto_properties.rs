//! Property tests for the `optrep` verb protocol: arbitrary requests
//! and responses round-trip exactly, every strict prefix of a valid
//! encoding is rejected (the daemon sees truncated frames whenever a
//! client dies mid-write — same discipline `fault_recovery` pins down
//! for the anti-entropy wire), trailing bytes are rejected, and random
//! byte soup never panics either decoder.
//!
//! `Status` is the one deliberate exception to strict-prefix
//! rejection: its decode tolerates an unknown varint tail so old
//! clients read new daemons, which means prefixes cut at a field
//! boundary past the seven original fields *do* decode. The generic
//! prefix property therefore excludes `Status`, and a dedicated
//! property pins the exact tolerance it gets instead.

use bytes::Bytes;
use optrep_core::obs::{FamilySnapshot, FamilyValue, HistogramSnapshot, MetricsSnapshot, BUCKETS};
use optrep_kv::KvSyncReport;
use optrep_server::proto::{Request, Response, StatusInfo};
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|raw| String::from_utf8_lossy(&raw).into_owned())
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_string().prop_map(|key| Request::Get { key }),
        (arb_string(), proptest::collection::vec(any::<u8>(), 0..48)).prop_map(|(key, value)| {
            Request::Put {
                key,
                value: Bytes::from(value),
            }
        }),
        arb_string().prop_map(|key| Request::Delete { key }),
        Just(Request::Status),
        Just(Request::Digest),
        arb_string().prop_map(|peer| Request::Sync { peer }),
        Just(Request::Metrics),
    ]
}

fn arb_status() -> impl Strategy<Value = StatusInfo> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (
            (any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        ),
    )
        .prop_map(
            |(
                site,
                keys,
                tracked,
                generation,
                (conn_dials, conn_contacts, conn_live),
                (
                    (uptime_secs, metrics_seq),
                    (wal_records, wal_bytes, wal_fsyncs, wal_checkpoint_seq),
                ),
            )| {
                StatusInfo {
                    site,
                    keys,
                    tracked,
                    generation,
                    conn_dials,
                    conn_contacts,
                    conn_live,
                    uptime_secs,
                    metrics_seq,
                    wal_records,
                    wal_bytes,
                    wal_fsyncs,
                    wal_checkpoint_seq,
                }
            },
        )
}

fn arb_family_value() -> impl Strategy<Value = FamilyValue> {
    prop_oneof![
        any::<u64>().prop_map(FamilyValue::Counter),
        any::<u64>().prop_map(FamilyValue::Gauge),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), BUCKETS),
        )
            .prop_map(|(sum, count, counts)| {
                FamilyValue::Histogram(HistogramSnapshot { counts, sum, count })
            }),
    ]
}

fn arb_metrics() -> impl Strategy<Value = MetricsSnapshot> {
    (
        any::<u64>(),
        proptest::collection::vec((arb_string(), arb_family_value()), 0..6),
    )
        .prop_map(|(seq, families)| MetricsSnapshot {
            seq,
            families: families
                .into_iter()
                .map(|(name, value)| FamilySnapshot { name, value })
                .collect(),
        })
}

fn arb_report() -> impl Strategy<Value = KvSyncReport> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |((examined, created, ff, reconciled), (unchanged, meta, value))| KvSyncReport {
                keys_examined: examined as usize,
                keys_created: created as usize,
                keys_fast_forwarded: ff as usize,
                keys_reconciled: reconciled as usize,
                keys_unchanged: unchanged as usize,
                meta_bytes: meta as usize,
                value_bytes: value as usize,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_strict_response(),
        arb_status().prop_map(Response::Status),
    ]
}

/// Every response variant whose decode is strict — i.e. all but
/// `Status`, whose tolerated unknown tail makes some prefixes valid.
fn arb_strict_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Value(None)),
        proptest::collection::vec(any::<u8>(), 0..48)
            .prop_map(|value| Response::Value(Some(Bytes::from(value)))),
        Just(Response::Ok),
        any::<u64>().prop_map(Response::Digest),
        arb_report().prop_map(Response::Synced),
        arb_string().prop_map(Response::Err),
        arb_metrics().prop_map(Response::Metrics),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(request in arb_request()) {
        let mut buf = request.encode();
        prop_assert_eq!(Request::decode(&mut buf).unwrap(), request);
    }

    #[test]
    fn response_roundtrip(response in arb_response()) {
        let mut buf = response.encode();
        prop_assert_eq!(Response::decode(&mut buf).unwrap(), response);
    }

    #[test]
    fn every_request_prefix_is_rejected(request in arb_request()) {
        let full = request.encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            prop_assert!(Request::decode(&mut buf).is_err(), "cut {} decoded", cut);
        }
    }

    #[test]
    fn every_response_prefix_is_rejected(response in arb_strict_response()) {
        let full = response.encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            prop_assert!(Response::decode(&mut buf).is_err(), "cut {} decoded", cut);
        }
    }

    /// The `Status` tolerance is exactly "whole trailing varints may be
    /// missing or extra": any prefix of a `Status` encoding either
    /// fails to decode (cut mid-field or before the seven original
    /// fields) or decodes to a `Status` agreeing with the original on
    /// the seven original fields, with absent extensions read as zero.
    #[test]
    fn status_prefixes_decode_compatibly_or_not_at_all(status in arb_status()) {
        let full = Response::Status(status).encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            if let Ok(Response::Status(got)) = Response::decode(&mut buf) {
                prop_assert_eq!(got.site, status.site);
                prop_assert_eq!(got.keys, status.keys);
                prop_assert_eq!(got.tracked, status.tracked);
                prop_assert_eq!(got.generation, status.generation);
                prop_assert_eq!(got.conn_dials, status.conn_dials);
                prop_assert_eq!(got.conn_contacts, status.conn_contacts);
                prop_assert_eq!(got.conn_live, status.conn_live);
                prop_assert!(got.uptime_secs == status.uptime_secs || got.uptime_secs == 0);
                prop_assert!(got.metrics_seq == status.metrics_seq || got.metrics_seq == 0);
                prop_assert!(got.wal_records == status.wal_records || got.wal_records == 0);
                prop_assert!(got.wal_bytes == status.wal_bytes || got.wal_bytes == 0);
                prop_assert!(got.wal_fsyncs == status.wal_fsyncs || got.wal_fsyncs == 0);
                prop_assert!(
                    got.wal_checkpoint_seq == status.wal_checkpoint_seq
                        || got.wal_checkpoint_seq == 0
                );
            }
        }
        // The full encoding itself always decodes.
        let mut buf = full.clone();
        prop_assert_eq!(Response::decode(&mut buf).unwrap(), Response::Status(status));
    }

    #[test]
    fn trailing_bytes_are_rejected(request in arb_request(), junk in any::<u8>()) {
        let mut padded = bytes::BytesMut::new();
        padded.extend_from_slice(&request.encode());
        padded.extend_from_slice(&[junk]);
        let mut buf = padded.freeze();
        prop_assert!(Request::decode(&mut buf).is_err());
    }

    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = Bytes::from(raw.clone());
        let _ = Request::decode(&mut buf);
        let mut buf = Bytes::from(raw);
        let _ = Response::decode(&mut buf);
    }
}
