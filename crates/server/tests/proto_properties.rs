//! Property tests for the `optrep` verb protocol: arbitrary requests
//! and responses round-trip exactly, every strict prefix of a valid
//! encoding is rejected (the daemon sees truncated frames whenever a
//! client dies mid-write — same discipline `fault_recovery` pins down
//! for the anti-entropy wire), trailing bytes are rejected, and random
//! byte soup never panics either decoder.

use bytes::Bytes;
use optrep_kv::KvSyncReport;
use optrep_server::proto::{Request, Response, StatusInfo};
use proptest::prelude::*;

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|raw| String::from_utf8_lossy(&raw).into_owned())
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_string().prop_map(|key| Request::Get { key }),
        (arb_string(), proptest::collection::vec(any::<u8>(), 0..48)).prop_map(|(key, value)| {
            Request::Put {
                key,
                value: Bytes::from(value),
            }
        }),
        arb_string().prop_map(|key| Request::Delete { key }),
        Just(Request::Status),
        Just(Request::Digest),
        arb_string().prop_map(|peer| Request::Sync { peer }),
    ]
}

fn arb_status() -> impl Strategy<Value = StatusInfo> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(site, keys, tracked, generation, (conn_dials, conn_contacts, conn_live))| {
                StatusInfo {
                    site,
                    keys,
                    tracked,
                    generation,
                    conn_dials,
                    conn_contacts,
                    conn_live,
                }
            },
        )
}

fn arb_report() -> impl Strategy<Value = KvSyncReport> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |((examined, created, ff, reconciled), (unchanged, meta, value))| KvSyncReport {
                keys_examined: examined as usize,
                keys_created: created as usize,
                keys_fast_forwarded: ff as usize,
                keys_reconciled: reconciled as usize,
                keys_unchanged: unchanged as usize,
                meta_bytes: meta as usize,
                value_bytes: value as usize,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Value(None)),
        proptest::collection::vec(any::<u8>(), 0..48)
            .prop_map(|value| Response::Value(Some(Bytes::from(value)))),
        Just(Response::Ok),
        arb_status().prop_map(Response::Status),
        any::<u64>().prop_map(Response::Digest),
        arb_report().prop_map(Response::Synced),
        arb_string().prop_map(Response::Err),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(request in arb_request()) {
        let mut buf = request.encode();
        prop_assert_eq!(Request::decode(&mut buf).unwrap(), request);
    }

    #[test]
    fn response_roundtrip(response in arb_response()) {
        let mut buf = response.encode();
        prop_assert_eq!(Response::decode(&mut buf).unwrap(), response);
    }

    #[test]
    fn every_request_prefix_is_rejected(request in arb_request()) {
        let full = request.encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            prop_assert!(Request::decode(&mut buf).is_err(), "cut {} decoded", cut);
        }
    }

    #[test]
    fn every_response_prefix_is_rejected(response in arb_response()) {
        let full = response.encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            prop_assert!(Response::decode(&mut buf).is_err(), "cut {} decoded", cut);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected(request in arb_request(), junk in any::<u8>()) {
        let mut padded = bytes::BytesMut::new();
        padded.extend_from_slice(&request.encode());
        padded.extend_from_slice(&[junk]);
        let mut buf = padded.freeze();
        prop_assert!(Request::decode(&mut buf).is_err());
    }

    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = Bytes::from(raw.clone());
        let _ = Request::decode(&mut buf);
        let mut buf = Bytes::from(raw);
        let _ = Response::decode(&mut buf);
    }
}
