//! Property tests for the WAL record format and crash recovery,
//! mirroring `proto_properties.rs`'s truncation discipline: every
//! strict prefix of a record is *torn* (fails with `UnexpectedEof`,
//! the one shape replay tolerates), a WAL cut at any byte recovers
//! exactly the store at the last whole-record boundary, and corruption
//! that is not a tail tear is a hard replay error, never skipped.

use bytes::Bytes;
use optrep_core::error::WireError;
use optrep_core::SiteId;
use optrep_kv::KvStore;
use optrep_server::persist::{
    decode_record, encode_record, DurabilityConfig, FsyncPolicy, Persist, WAL_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "optrep-persistprop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One logical mutation batch: the keys and values a single WAL record
/// will carry (a 1-entry batch is a `put`; larger ones model a contact
/// commit).
fn arb_key() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..3, 1..4)
        .prop_map(|raw| raw.into_iter().map(|b| (b'a' + b) as char).collect())
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<(String, Vec<u8>)>>> {
    let value = proptest::collection::vec(any::<u8>(), 1..24);
    let batch = proptest::collection::vec((arb_key(), value), 1..4);
    proptest::collection::vec(batch, 1..5)
}

/// Applies one batch to `store` and logs it as one record, exactly as
/// the daemon's `wal_append` does.
fn commit_batch(store: &mut KvStore, persist: &mut Persist, batch: &[(String, Vec<u8>)]) {
    let mut keys = Vec::new();
    for (key, value) in batch {
        store.put(key.clone(), value.clone());
        keys.push(key.clone());
    }
    keys.sort();
    keys.dedup();
    let changed: Vec<(String, Bytes)> = keys
        .iter()
        .map(|key| (key.clone(), store.encode_entry(key).expect("tracked")))
        .collect();
    persist.append(&changed).expect("append");
}

proptest! {
    // File-heavy properties: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Round-trip: whatever was committed through the WAL is exactly
    /// what reopening the dir recovers (the store `PartialEq` compares
    /// site + entries, so "exactly" includes every vector and value).
    #[test]
    fn recovery_rebuilds_exactly_the_committed_store(batches in arb_batches()) {
        let dir = scratch_dir("roundtrip");
        let config = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let site = SiteId::new(0);
        let (mut persist, mut store, _) = Persist::open(&config, site).expect("open");
        for batch in &batches {
            commit_batch(&mut store, &mut persist, batch);
        }
        drop(persist);
        let (_, recovered, report) = Persist::open(&config, site).expect("reopen");
        prop_assert!(!report.torn_tail);
        prop_assert_eq!(report.wal_records_applied, batches.len() as u64);
        prop_assert_eq!(&recovered, &store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every strict prefix of an encoded record fails with
    /// `UnexpectedEof` — the torn-tail shape — and never any other
    /// error. This is what makes "tolerate exactly one trailing tear"
    /// sound: a crash cannot manufacture a prefix that decodes as a
    /// different record or as non-tear corruption.
    #[test]
    fn every_record_prefix_is_torn_not_corrupt(
        seq in 0u64..u64::from(u32::MAX),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let full = encode_record(seq, &payload);
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            prop_assert_eq!(
                decode_record(&mut buf).unwrap_err(),
                WireError::UnexpectedEof,
                "cut {} of {}", cut, full.len()
            );
        }
        let mut buf = full.clone();
        let (got_seq, got_payload) = decode_record(&mut buf).expect("full record decodes");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(&got_payload[..], &payload[..]);
    }

    /// Cut the WAL file at *any* byte: recovery still succeeds (past
    /// the header) and lands exactly on the store at the last whole
    /// record before the cut — the crash-anywhere guarantee.
    #[test]
    fn any_wal_cut_recovers_the_last_whole_record_state(batches in arb_batches()) {
        let dir = scratch_dir("cut");
        let config = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let site = SiteId::new(2);
        let (mut persist, mut store, _) = Persist::open(&config, site).expect("open");
        // (file length so far, digest at that record boundary)
        let mut boundaries = vec![(persist.wal_len(), store.replica_digest())];
        for batch in &batches {
            commit_batch(&mut store, &mut persist, batch);
            boundaries.push((persist.wal_len(), store.replica_digest()));
        }
        drop(persist);
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).expect("read wal");
        let header_len = boundaries[0].0;

        for cut in 0..=full.len() as u64 {
            std::fs::write(&wal_path, &full[..cut as usize]).expect("truncate");
            let result = Persist::open(&config, site);
            if cut < header_len {
                // A header can never be torn (it is written atomically);
                // a short header is corruption and must refuse to open.
                prop_assert!(result.is_err(), "cut {} inside header opened", cut);
                continue;
            }
            let (_, recovered, _) = result.expect("open after cut");
            let expected = boundaries
                .iter()
                .rev()
                .find(|(len, _)| *len <= cut)
                .expect("header boundary exists")
                .1;
            prop_assert_eq!(
                recovered.replica_digest(),
                expected,
                "cut {} recovered a state off every record boundary", cut
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip a byte inside the payload of a record that is NOT the tail:
    /// the checksum catches it and recovery refuses — corruption before
    /// the tail must never be silently skipped as if it were a tear.
    /// (Values are sized so the flipped byte is well clear of the
    /// varint framing; a corrupted *length* varint is the documented
    /// undetectable case, indistinguishable from a tear.)
    #[test]
    fn mid_log_payload_corruption_refuses_recovery(
        value in proptest::collection::vec(any::<u8>(), 48..96),
        flip in 1u8..=255,
    ) {
        let dir = scratch_dir("flip");
        let config = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never);
        let site = SiteId::new(1);
        let (mut persist, mut store, _) = Persist::open(&config, site).expect("open");
        let start = persist.wal_len();
        commit_batch(&mut store, &mut persist, &[("victim".into(), value)]);
        let end = persist.wal_len();
        commit_batch(&mut store, &mut persist, &[("tail".into(), vec![1, 2, 3])]);
        drop(persist);

        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).expect("read wal");
        // Mid-record: past any leading varints, clear of the trailing
        // checksum (values are ≥48 bytes, framing varints ≤15 total).
        let target = ((start + end) / 2) as usize;
        bytes[target] ^= flip;
        std::fs::write(&wal_path, &bytes).expect("write corrupted wal");
        prop_assert!(
            Persist::open(&config, site).is_err(),
            "corrupted non-tail record recovered silently"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
