//! In-process daemon cluster tests: the same 3-node loopback topology
//! the README quickstart and the CI smoke script drive with real
//! processes, plus the fault cases the ISSUE pins down (a daemon dying
//! mid-sync must leave the survivors' metadata byte-identical).

use optrep_core::{Error, SiteId};
use optrep_kv::KvStore;
use optrep_net::ConnectOptions;
use optrep_server::{Client, Node, NodeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// Short deadlines so failure tests don't wait out 5 s socket timeouts.
fn fast_connect() -> ConnectOptions {
    ConnectOptions::new()
        .attempts(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(4))
        .timeouts(
            Some(Duration::from_millis(400)),
            Some(Duration::from_millis(400)),
        )
}

fn ephemeral() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback")
}

fn start_node(site: u32) -> Node {
    Node::start(NodeConfig::new(SiteId::new(site), ephemeral()).with_connect(fast_connect()))
        .expect("node starts")
}

#[test]
fn three_node_cluster_converges_via_sync_verbs() {
    let nodes = [start_node(0), start_node(1), start_node(2)];
    // Divergent writes, including a conflict on "shared" and a tombstone.
    nodes[0].with_store(|s| {
        s.put("alpha", "from-a");
        s.put("shared", "a-version");
    });
    nodes[1].with_store(|s| {
        s.put("beta", "from-b");
        s.put("shared", "b-version");
    });
    nodes[2].with_store(|s| {
        s.put("gamma", "from-c");
        s.delete("gamma");
        s.put("delta", "from-c");
    });
    let digests: Vec<u64> = nodes.iter().map(Node::digest).collect();
    assert_eq!(
        digests
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len(),
        3
    );

    // Pull rounds over the verb protocol until every digest agrees,
    // exactly as `optrep sync` does from the shell.
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let mut clients: Vec<Client> = nodes
        .iter()
        .map(|n| Client::connect(n.addr(), &fast_connect()).expect("client connects"))
        .collect();
    for _round in 0..4 {
        for (dst, client) in clients.iter_mut().enumerate() {
            for (src, addr) in addrs.iter().enumerate() {
                if dst != src {
                    client.sync(addr).expect("sync verb succeeds");
                }
            }
        }
        let digests: Vec<u64> = nodes.iter().map(Node::digest).collect();
        if digests.iter().all(|d| *d == digests[0]) {
            break;
        }
    }
    let digests: Vec<u64> = nodes.iter().map(Node::digest).collect();
    assert!(
        digests.iter().all(|d| *d == digests[0]),
        "cluster did not converge: {digests:x?}"
    );
    // Every replica serves every key; the conflict resolved identically.
    let shared = clients[0].get("shared").expect("get").expect("present");
    for client in &mut clients {
        assert_eq!(
            client.get("alpha").expect("get").as_deref(),
            Some(&b"from-a"[..])
        );
        assert_eq!(
            client.get("beta").expect("get").as_deref(),
            Some(&b"from-b"[..])
        );
        assert_eq!(
            client.get("delta").expect("get").as_deref(),
            Some(&b"from-c"[..])
        );
        assert_eq!(
            client.get("gamma").expect("get"),
            None,
            "tombstone replicated"
        );
        assert_eq!(
            client.get("shared").expect("get").as_deref(),
            Some(&shared[..])
        );
    }
    for node in nodes {
        node.stop();
    }
}

#[test]
fn verbs_roundtrip_over_the_wire() {
    let node = start_node(7);
    let mut client = Client::connect(node.addr(), &fast_connect()).expect("connect");
    assert_eq!(client.get("missing").expect("get"), None);
    client.put("k", &b"v1"[..]).expect("put");
    assert_eq!(client.get("k").expect("get").as_deref(), Some(&b"v1"[..]));
    let status = client.status().expect("status");
    assert_eq!(status.site, 7);
    assert_eq!((status.keys, status.tracked), (1, 1));
    assert!(status.generation > 0);
    client.delete("k").expect("delete");
    assert_eq!(client.get("k").expect("get"), None);
    let status = client.status().expect("status");
    assert_eq!(
        (status.keys, status.tracked),
        (0, 1),
        "tombstones stay tracked"
    );
    assert_eq!(client.digest().expect("digest"), node.digest());
    node.stop();
}

#[test]
fn tcp_pull_report_matches_in_memory_sync() {
    // The same two stores, one pair synced in-process and one served
    // over real sockets: the pull reports (including meta/value byte
    // counts) must be identical — sockets add wall-clock, not bytes.
    let seed_dst = |s: &mut KvStore| {
        s.put("common", "dst");
        s.put("mine", "dst-only");
    };
    let seed_src = |s: &mut KvStore| {
        s.put("common", "src");
        s.put("theirs", "src-only");
        s.delete("mine-gone");
    };
    let mut mem_dst = KvStore::new(SiteId::new(0));
    let mut mem_src = KvStore::new(SiteId::new(1));
    seed_dst(&mut mem_dst);
    seed_src(&mut mem_src);
    let reference = mem_dst.sync(&mem_src).run().expect("in-memory sync");

    let dst = start_node(0);
    let src = start_node(1);
    dst.with_store(seed_dst);
    src.with_store(seed_src);
    let report = dst.sync_with(src.addr()).expect("tcp pull");
    assert_eq!(report, reference, "byte-for-byte identical pull report");
    assert_eq!(dst.digest(), mem_dst.replica_digest());
    dst.stop();
    src.stop();
}

#[test]
fn dead_peer_leaves_survivor_metadata_untouched() {
    let survivor = start_node(0);
    survivor.with_store(|s| {
        s.put("stable", "value");
        s.put("other", "value");
    });
    let before = survivor.digest();

    // Peer 1: nothing listening (daemon killed before the dial).
    let dead = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let err = survivor.sync_with(dead).expect_err("dial must fail");
    assert!(matches!(err, Error::ConnectionLost { .. }), "{err:?}");
    assert_eq!(survivor.digest(), before, "failed dial mutated the store");

    // Peer 2: accepts, reads the burst, answers with a truncated frame,
    // dies mid-sync. The survivor must abort — digest-identical state.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let killer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        // A frame header promising more payload than will ever come.
        let _ = stream.write_all(&[3, 200, 1, 2, 3]);
        drop(stream);
    });
    let err = survivor
        .sync_with(addr)
        .expect_err("mid-frame death must fail");
    assert!(
        matches!(err, Error::ConnectionLost { .. } | Error::Incomplete { .. }),
        "{err:?}"
    );
    killer.join().expect("killer thread");
    assert_eq!(survivor.digest(), before, "aborted pull mutated the store");

    // The survivor still syncs fine with a healthy peer afterwards.
    let healthy = start_node(1);
    healthy.with_store(|s| s.put("fresh", "peer"));
    survivor.sync_with(healthy.addr()).expect("healthy pull");
    assert_ne!(survivor.digest(), before);
    survivor.with_store(|s| assert_eq!(s.get("fresh"), Some(&b"peer"[..])));
    survivor.stop();
    healthy.stop();
}

#[test]
fn repeated_syncs_reuse_one_peer_connection() {
    let dst = start_node(0);
    let src = start_node(1);
    for i in 0..6 {
        src.with_store(|s| s.put(format!("k{i}"), "v"));
        dst.sync_with(src.addr()).expect("pull");
    }
    let totals = dst.conn_totals();
    assert_eq!(totals.dials, 1, "every pull must pipeline over one socket");
    assert!(totals.contacts >= 6, "contacts: {}", totals.contacts);
    assert_eq!(totals.discards, 0);
    // The status verb reports the same counters over the wire — this is
    // what smoke_cluster.sh asserts from the shell.
    let mut client = Client::connect(dst.addr(), &fast_connect()).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(status.conn_dials, 1);
    assert!(status.conn_contacts >= 6);
    assert_eq!(status.conn_live, 1);
    dst.stop();
    src.stop();
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("proc")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads line")
        .trim()
        .parse()
        .expect("thread count")
}

/// The event-driven core's whole point: connections are states in one
/// loop, not threads. Tolerate a little drift from concurrently running
/// tests — a thread-per-connection regression would add ~64.
#[cfg(target_os = "linux")]
#[test]
fn daemon_thread_count_is_independent_of_connections() {
    let node = start_node(9);
    let mut warm = Client::connect(node.addr(), &fast_connect()).expect("connect");
    warm.put("k", &b"v"[..]).expect("put");
    let before = thread_count();
    let mut clients: Vec<Client> = (0..64)
        .map(|_| Client::connect(node.addr(), &fast_connect()).expect("connect"))
        .collect();
    for client in &mut clients {
        assert_eq!(client.get("k").expect("get").as_deref(), Some(&b"v"[..]));
    }
    let during = thread_count();
    assert!(
        during <= before + 4,
        "64 connections grew the process from {before} to {during} threads"
    );
    node.stop();
}

#[test]
fn gossip_thread_converges_without_explicit_syncs() {
    let seeded = start_node(0);
    seeded.with_store(|s| {
        s.put("origin", "seeded");
    });
    let follower = Node::start(
        NodeConfig::new(SiteId::new(1), ephemeral())
            .with_connect(fast_connect())
            .with_peers([seeded.addr()])
            .with_gossip(Duration::from_millis(20)),
    )
    .expect("follower starts");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while follower.digest() != seeded.digest() {
        assert!(
            std::time::Instant::now() < deadline,
            "gossip did not converge in time"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    follower.with_store(|s| assert_eq!(s.get("origin"), Some(&b"seeded"[..])));
    follower.stop();
    seeded.stop();
}

#[test]
fn concurrent_writes_during_pull_are_not_lost() {
    // A local write racing the pull's network phase must survive: the
    // generation check forces a retry instead of committing outcomes
    // staged against pre-write metadata.
    let dst = start_node(0);
    let src = start_node(1);
    src.with_store(|s| {
        for i in 0..50 {
            s.put(format!("bulk{i}"), "payload");
        }
    });
    let writer = {
        let addr = dst.addr();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, &fast_connect()).expect("connect");
            for i in 0..20 {
                client
                    .put(&format!("racing{i}"), &b"local"[..])
                    .expect("put");
            }
        })
    };
    // Pull repeatedly while the writer hammers; racing pulls may error
    // out (raced too often) but must never drop a local write.
    for _ in 0..5 {
        let _ = dst.sync_with(src.addr());
    }
    writer.join().expect("writer thread");
    let _ = dst.sync_with(src.addr());
    dst.with_store(|s| {
        for i in 0..20 {
            assert_eq!(
                s.get(&format!("racing{i}")),
                Some(&b"local"[..]),
                "local write racing{i} was lost"
            );
        }
        for i in 0..50 {
            assert_eq!(s.get(&format!("bulk{i}")), Some(&b"payload"[..]));
        }
    });
    dst.stop();
    src.stop();
}

/// Regression for a real bug: the daemon's sync worker is spawned
/// lazily on the first `sync` verb, from the event-loop thread — if
/// the spawn does not re-install the sinks captured at `Node::start`,
/// every event the executor's pulls emit silently vanishes. Drive a
/// pull through the verb path (client → event loop → worker thread)
/// under an installed `CounterSink` and demand the events arrived.
#[cfg(feature = "obs")]
#[test]
fn worker_thread_events_reach_sinks_installed_at_start() {
    use optrep_core::obs::{self, CounterSink};
    use std::sync::Arc;

    let sink = Arc::new(CounterSink::new());
    let (dst, src) = obs::with(Arc::clone(&sink) as Arc<dyn obs::Sink>, || {
        (start_node(0), start_node(1))
    });
    src.with_store(|s| s.put("observed", "value"));
    let mut client = Client::connect(dst.addr(), &fast_connect()).expect("connect");
    client.sync(&src.addr().to_string()).expect("sync verb");
    let counts = sink.snapshot();
    assert!(
        counts.contacts >= 1,
        "worker-thread pull emitted no contact events: {counts:?}"
    );
    assert!(
        counts.compare_bytes + counts.framing_bytes >= 1,
        "no byte totals: {counts:?}"
    );
    dst.stop();
    src.stop();
}

/// The `Metrics` verb end to end: the snapshot a client pulls over the
/// wire must agree with the daemon's own activity, its sequence number
/// must advance per snapshot (and show up in `status`), and the
/// Prometheus rendering must carry the families `optrep top` reads.
#[test]
fn metrics_verb_reports_daemon_activity() {
    let dst = start_node(0);
    let src = start_node(1);
    src.with_store(|s| s.put("k", "v"));
    let mut client = Client::connect(dst.addr(), &fast_connect()).expect("connect");
    client.sync(&src.addr().to_string()).expect("sync verb");

    let first = client.metrics().expect("metrics verb");
    let second = client.metrics().expect("metrics verb");
    assert!(second.seq > first.seq, "snapshot sequence must advance");
    let status = client.status().expect("status");
    assert!(status.metrics_seq >= second.seq);
    assert_eq!(status.uptime_secs, status.uptime_secs); // decoded, not junk

    // Gauges mirror the store the verbs see.
    assert_eq!(second.gauge("optrep_store_keys"), Some(1));
    assert_eq!(second.gauge("optrep_conn_live"), Some(1));
    // With obs on, the sync above must have landed in the histograms
    // and counters; without it, the families still exist at zero.
    let contacts = second.counter("optrep_contacts_total").expect("family");
    let latency = second.histogram("optrep_contact_micros").expect("family");
    if cfg!(feature = "obs") {
        assert!(contacts >= 1, "contacts: {contacts}");
        assert_eq!(latency.count, contacts, "one latency sample per contact");
    }

    let text = second.to_prometheus();
    for family in [
        "# TYPE optrep_contacts_total counter",
        "# TYPE optrep_contact_micros histogram",
        "# TYPE optrep_store_keys gauge",
        "optrep_contact_micros_bucket{le=\"+Inf\"}",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    dst.stop();
    src.stop();
}

/// A throwaway data dir under the system temp dir (no tempfile crate in
/// the workspace); best-effort cleanup at the end of each test.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "optrep-cluster-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start_durable(site: u32, dir: &std::path::Path) -> Node {
    Node::start(
        NodeConfig::new(SiteId::new(site), ephemeral())
            .with_connect(fast_connect())
            .with_data_dir(dir),
    )
    .expect("durable node starts")
}

/// A durable node stopped gracefully and restarted from its data dir
/// comes back with the identical store — including state that arrived
/// three different ways: the durable write path, the verb protocol,
/// and a WAL-logged anti-entropy contact.
#[test]
fn durable_node_recovers_identical_store_after_restart() {
    let dir = scratch_dir("restart");
    let peer = start_node(1);
    peer.with_store(|s| {
        s.put("from-peer", "gossiped");
        s.put("shared", "peer-version");
        s.delete("from-peer"); // a tombstone must survive recovery too
    });

    let node = start_durable(0, &dir);
    node.put("local", "durable-path").expect("durable put");
    node.put("shared", "local-version").expect("durable put");
    let mut client = Client::connect(node.addr(), &fast_connect()).expect("connect");
    client.put("via-verb", &b"wire"[..]).expect("verb put");
    client.delete("local").expect("verb delete");
    node.sync_with(peer.addr()).expect("contact commits");
    let digest = node.digest();
    let keys = node.with_store(|s| s.encode_snapshot());
    node.stop();

    let revived = start_durable(0, &dir);
    let replay = revived
        .replay_report()
        .expect("durable node reports replay");
    assert_eq!(
        replay.wal_records_applied, 0,
        "graceful stop checkpoints; boot replays nothing: {replay:?}"
    );
    assert!(replay.snapshot_bytes > 0, "state came from the snapshot");
    assert_eq!(revived.digest(), digest, "recovered replica diverged");
    assert_eq!(
        revived.with_store(|s| s.encode_snapshot()),
        keys,
        "recovered store is not byte-identical"
    );
    revived.stop();
    peer.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the pull-commit TOCTOU window: the generation
/// re-check and the `apply_contact` commit must happen under ONE store
/// guard. Hammer local writes into a node while it pulls repeatedly;
/// if check and commit ever take the lock separately, a write landing
/// between them is clobbered by a commit that passed a stale check.
#[test]
fn pull_commit_cannot_clobber_a_write_racing_the_guard() {
    let dst = start_node(0);
    let src = start_node(1);
    src.with_store(|s| {
        for i in 0..50 {
            s.put(format!("bulk{i}"), vec![0u8; 256]);
        }
    });
    let stop_flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let addr = dst.addr();
        let stop_flag = std::sync::Arc::clone(&stop_flag);
        // Generous deadlines: the writer competes with contact commits
        // for the event loop; a slow ack is fine, only a LOST ack
        // matters. Unacked puts (connection hiccups) are skipped — the
        // clobber claim is only about writes the daemon acknowledged.
        let patient = ConnectOptions::new()
            .timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)));
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, &patient).expect("connect");
            let mut acked = Vec::new();
            let mut n = 0u32;
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                match client.put(&format!("racing{n}"), &b"local"[..]) {
                    Ok(()) => acked.push(n),
                    Err(_) => {
                        if let Ok(fresh) = Client::connect(addr, &patient) {
                            client = fresh;
                        }
                    }
                }
                n += 1;
                // Pace just enough that pulls can occasionally win the
                // generation race and commit — an unbroken write storm
                // only ever exercises the retry-exhausted path.
                std::thread::sleep(Duration::from_millis(1));
            }
            acked
        })
    };
    // Many pulls while the writer hammers: each one exercises the
    // re-check-then-commit window. Races may exhaust a pull's retries
    // (an error), but no committed pull may lose a local write.
    for _ in 0..15 {
        let _ = dst.sync_with(src.addr());
    }
    stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    let acked = writer.join().expect("writer thread");
    assert!(!acked.is_empty(), "writer never got a put acknowledged");
    dst.with_store(|s| {
        for n in &acked {
            assert!(
                s.get(&format!("racing{n}")).is_some(),
                "acked write racing{n} was clobbered by a pull commit"
            );
        }
    });
    dst.stop();
    src.stop();
}

/// The `status` verb surfaces WAL activity on a durable node and all
/// zeros on a memory-only one (tail-tolerant fields, absent = 0).
#[test]
fn status_reports_wal_counters_only_when_durable() {
    let dir = scratch_dir("status");
    let durable = Node::start(
        NodeConfig::new(SiteId::new(0), ephemeral())
            .with_connect(fast_connect())
            .with_durability(
                optrep_server::DurabilityConfig::new(&dir)
                    .with_fsync(optrep_server::FsyncPolicy::Always),
            ),
    )
    .expect("durable node starts");
    let plain = start_node(1);

    let mut client = Client::connect(durable.addr(), &fast_connect()).expect("connect");
    client.put("a", &b"1"[..]).expect("put");
    client.put("b", &b"2"[..]).expect("put");
    let status = client.status().expect("status");
    assert_eq!(status.wal_records, 2, "one WAL record per committed put");
    assert!(status.wal_bytes > 0);
    assert!(status.wal_fsyncs >= 2, "fsync=always syncs each append");

    let mut client = Client::connect(plain.addr(), &fast_connect()).expect("connect");
    client.put("a", &b"1"[..]).expect("put");
    let status = client.status().expect("status");
    assert_eq!(
        (status.wal_records, status.wal_bytes, status.wal_fsyncs),
        (0, 0, 0),
        "memory-only daemon reports no WAL activity"
    );

    // The metrics registry carries the same story.
    let snapshot = durable.metrics_snapshot();
    assert_eq!(snapshot.counter("optrep_wal_records_total"), Some(2));
    assert!(snapshot.gauge("optrep_wal_size_bytes").unwrap_or(0) > 0);

    durable.stop();
    plain.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
