//! The `optrep` client: a verb session over one TCP connection.

use crate::proto::{Request, Response, StatusInfo};
use bytes::Bytes;
use optrep_core::wire::{Handshake, Intent};
use optrep_core::{Error, Result};
use optrep_kv::KvSyncReport;
use optrep_net::{ConnectOptions, TcpLink};
use optrep_replication::CONTROL_STREAM;
use std::net::SocketAddr;

/// A connected verb session against one `optrepd` daemon.
///
/// Each call sends one [`Request`] frame and blocks for its
/// [`Response`] frame. The connection identifies itself as an
/// anonymous client (site `u32::MAX`) in the opening handshake.
pub struct Client {
    link: TcpLink,
}

impl Client {
    /// Dials `addr` and performs the verb handshake.
    ///
    /// # Errors
    ///
    /// [`Error::ConnectionLost`] when every dial attempt fails,
    /// transport errors if the handshake cannot be written.
    pub fn connect(addr: SocketAddr, opts: &ConnectOptions) -> Result<Client> {
        let mut link = TcpLink::connect(addr, opts)?;
        link.send_frame(
            CONTROL_STREAM,
            &Handshake::new(u32::MAX, Intent::Verbs).encode(),
        )?;
        Ok(Client { link })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`Error::Wire`] if the daemon's answer does
    /// not decode.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        self.link.send_frame(CONTROL_STREAM, &request.encode())?;
        let frame = self.link.recv_frame()?;
        let mut payload = frame.payload;
        Response::decode(&mut payload).map_err(Error::from)
    }

    /// Converts an unexpected response shape into a protocol error.
    fn unexpected(verb: &'static str, response: Response) -> Error {
        Error::UnexpectedMessage {
            protocol: verb,
            message: format!("{response:?}"),
        }
    }

    /// Reads `key`; `None` for absent or tombstoned keys.
    ///
    /// # Errors
    ///
    /// Transport errors, or the daemon's own refusal
    /// ([`Error::UnexpectedMessage`] carrying the message).
    pub fn get(&mut self, key: &str) -> Result<Option<Bytes>> {
        match self.request(&Request::Get {
            key: key.to_string(),
        })? {
            Response::Value(value) => Ok(value),
            other => Err(Self::unexpected("get", other)),
        }
    }

    /// Writes `key`.
    ///
    /// # Errors
    ///
    /// As [`Client::get`].
    pub fn put(&mut self, key: &str, value: impl Into<Bytes>) -> Result<()> {
        let request = Request::Put {
            key: key.to_string(),
            value: value.into(),
        };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected("put", other)),
        }
    }

    /// Deletes `key` (a replicated tombstone, not a local forget).
    ///
    /// # Errors
    ///
    /// As [`Client::get`].
    pub fn delete(&mut self, key: &str) -> Result<()> {
        match self.request(&Request::Delete {
            key: key.to_string(),
        })? {
            Response::Ok => Ok(()),
            other => Err(Self::unexpected("delete", other)),
        }
    }

    /// The daemon's vital signs, including its outbound peer-connection
    /// counters (see [`StatusInfo`]).
    ///
    /// # Errors
    ///
    /// As [`Client::get`].
    pub fn status(&mut self) -> Result<StatusInfo> {
        match self.request(&Request::Status)? {
            Response::Status(info) => Ok(info),
            other => Err(Self::unexpected("status", other)),
        }
    }

    /// The daemon's site-independent replica digest.
    ///
    /// # Errors
    ///
    /// As [`Client::get`].
    pub fn digest(&mut self) -> Result<u64> {
        match self.request(&Request::Digest)? {
            Response::Digest(digest) => Ok(digest),
            other => Err(Self::unexpected("digest", other)),
        }
    }

    /// A self-describing snapshot of every metric family the daemon
    /// registers (render with
    /// [`MetricsSnapshot::to_prometheus`](optrep_core::obs::MetricsSnapshot::to_prometheus)).
    ///
    /// # Errors
    ///
    /// As [`Client::get`].
    pub fn metrics(&mut self) -> Result<optrep_core::obs::MetricsSnapshot> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(Self::unexpected("metrics", other)),
        }
    }

    /// Asks the daemon to pull from `peer` now.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`Error::UnexpectedMessage`] carrying the
    /// daemon's failure reason (unreachable peer, raced writes, …).
    pub fn sync(&mut self, peer: &str) -> Result<KvSyncReport> {
        let request = Request::Sync {
            peer: peer.to_string(),
        };
        match self.request(&request)? {
            Response::Synced(report) => Ok(report),
            other => Err(Self::unexpected("sync", other)),
        }
    }
}
