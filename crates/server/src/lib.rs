//! `optrepd`: rotating-vector anti-entropy served over real sockets.
//!
//! Everything below the daemon is the existing stack, unchanged: the
//! sans-io protocol endpoints from `optrep-core`, the batched mux
//! contact from `optrep-replication`, and the framed TCP transport from
//! `optrep-net`. This crate adds the deployment shape the paper's
//! communication-optimality argument assumes — long-lived replica
//! daemons exchanging metadata over real connections:
//!
//! * [`Node`] — the daemon: a multi-threaded accept loop on a
//!   `TcpListener` that dispatches each connection by its
//!   [`Handshake`](optrep_core::wire::Handshake) intent, a
//!   generation-checked pull path committing contacts transactionally
//!   against the shared [`KvStore`](optrep_kv::KvStore), and an
//!   optional periodic gossip thread.
//! * [`Client`] — the `optrep` CLI's verb session:
//!   `get`/`put`/`delete`/`status`/`digest`/`sync <peer>` as one
//!   request/response frame pair each ([`proto`]).
//!
//! Binaries: `optrepd` (the daemon) and `optrep` (the client). A
//! three-node localhost cluster is a README quickstart away; the
//! `cluster` integration tests drive the same topology in-process.

pub mod client;
pub mod node;
pub mod persist;
pub mod proto;

pub use client::Client;
pub use node::{Node, NodeConfig};
pub use persist::{DurabilityConfig, FsyncPolicy, Persist, ReplayReport};
