//! The `optrepd` daemon: one replica site served over TCP.
//!
//! ```text
//! optrepd --site <id> --listen <addr> [--peer <addr>]... [--gossip-ms <n>]
//!         [--data-dir <path>] [--fsync always|interval[:ms]|never]
//!         [--checkpoint-ms <n>]
//! ```
//!
//! * `--site` — this replica's site id: a numeric index, a letter
//!   (`A` = 0), or the `S<n>` form.
//! * `--listen` — bind address, e.g. `127.0.0.1:7701` (port 0 picks an
//!   ephemeral port; the bound address is printed on startup).
//! * `--peer` — a peer daemon to pull from periodically; repeatable.
//! * `--gossip-ms` — gossip period in milliseconds (default 500 when
//!   peers are given, off otherwise).
//! * `--data-dir` — makes the daemon durable: every committed mutation
//!   is WAL-logged here before it is acknowledged, checkpoints compact
//!   the log in the background, and a restart (even after `kill -9`)
//!   replays snapshot + WAL back to exactly the committed state. A
//!   `recovered ...` line reports what boot replay found.
//! * `--fsync` — when WAL appends reach the disk: `always` (an acked
//!   write survives a crash), `interval[:ms]` (bounded loss, default
//!   50 ms — the default policy), or `never` (the OS decides).
//! * `--checkpoint-ms` — background checkpoint period (default 30000).
//!
//! On SIGINT/SIGTERM the daemon shuts down gracefully: it stops its
//! threads, writes a final checkpoint, fsyncs the WAL, FINs pooled peer
//! connections, and flushes any `OPTREP_OBS_JSONL`/`OPTREP_FLIGHT_JSONL`
//! sinks before exiting.
//!
//! With the `obs` feature, `OPTREP_OBS_JSONL=<path>` streams every sync
//! event the daemon's contacts emit to `<path>`; validate it with
//! `tables --check-jsonl <path>`. `OPTREP_FLIGHT_JSONL=<path>` arms the
//! slow-contact flight recorder: each contact's recent events ride a
//! bounded ring, and rings of contacts slower than
//! `OPTREP_FLIGHT_SLOW_MS` (default 250) — or aborted ones — are dumped
//! to `<path>` as JSONL. Both can be set at once; they are independent
//! sinks over the same event stream.
//!
//! The daemon prints one `listening on <addr>` line once reachable and
//! runs until killed.

use optrep_core::SiteId;
use optrep_replication::RetryPolicy;
use optrep_server::{DurabilityConfig, FsyncPolicy, Node, NodeConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: optrepd --site <id> --listen <addr> [--peer <addr>]... [--gossip-ms <n>]\n\
         \x20              [--data-dir <path>] [--fsync always|interval[:ms]|never] \
         [--checkpoint-ms <n>]"
    );
    std::process::exit(2)
}

/// SIGINT/SIGTERM latch (unix): the handler only flips an atomic; the
/// main thread polls it and runs the actual shutdown outside signal
/// context. Installed with `signal(2)` bound directly — the same
/// no-libc-crate FFI discipline `optrep_net::reactor` uses for
/// `poll(2)`.
#[cfg(unix)]
mod signals {
    use std::ffi::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Only async-signal-safe work here: one atomic store.
        REQUESTED.store(true, Ordering::Release);
    }

    /// Installs the latch for SIGINT and SIGTERM.
    pub fn install() {
        let handler = on_signal as extern "C" fn(c_int) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::Acquire)
    }
}

fn parse_site(s: &str) -> SiteId {
    SiteId::parse(s)
        .or_else(|| s.parse::<u32>().ok().map(SiteId::new))
        .unwrap_or_else(|| {
            eprintln!("optrepd: bad site id: {s}");
            std::process::exit(2)
        })
}

fn parse_addr(s: &str) -> SocketAddr {
    s.parse().unwrap_or_else(|_| {
        eprintln!("optrepd: bad address: {s}");
        std::process::exit(2)
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut site: Option<SiteId> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut gossip_ms: Option<u64> = None;
    let mut data_dir: Option<String> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut checkpoint_ms: Option<u64> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("optrepd: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--site" => site = Some(parse_site(&value("--site"))),
            "--listen" => listen = Some(parse_addr(&value("--listen"))),
            "--peer" => peers.push(parse_addr(&value("--peer"))),
            "--gossip-ms" => {
                let raw = value("--gossip-ms");
                match raw.parse::<u64>() {
                    Ok(ms) => gossip_ms = Some(ms),
                    Err(_) => {
                        eprintln!("optrepd: bad gossip period: {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--fsync" => {
                let raw = value("--fsync");
                match FsyncPolicy::parse(&raw) {
                    Some(policy) => fsync = Some(policy),
                    None => {
                        eprintln!("optrepd: bad fsync policy: {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--checkpoint-ms" => {
                let raw = value("--checkpoint-ms");
                match raw.parse::<u64>() {
                    Ok(ms) => checkpoint_ms = Some(ms),
                    Err(_) => {
                        eprintln!("optrepd: bad checkpoint period: {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("optrepd: unknown argument: {other}");
                usage()
            }
        }
    }
    let (Some(site), Some(listen)) = (site, listen) else {
        usage()
    };
    let gossip = match (gossip_ms, peers.is_empty()) {
        (Some(ms), _) => Some(Duration::from_millis(ms.max(1))),
        (None, false) => Some(Duration::from_millis(500)),
        (None, true) => None,
    };
    let mut config = NodeConfig::new(site, listen)
        .with_peers(peers)
        .with_retry(RetryPolicy::default());
    if let Some(interval) = gossip {
        config = config.with_gossip(interval);
    }
    match data_dir {
        Some(dir) => {
            let mut durability = DurabilityConfig::new(dir);
            if let Some(policy) = fsync {
                durability = durability.with_fsync(policy);
            }
            if let Some(ms) = checkpoint_ms {
                durability = durability.with_checkpoint_interval(Duration::from_millis(ms.max(1)));
            }
            config = config.with_durability(durability);
        }
        None if fsync.is_some() || checkpoint_ms.is_some() => {
            eprintln!("optrepd: --fsync/--checkpoint-ms need --data-dir");
            std::process::exit(2);
        }
        None => {}
    }
    run_traced(config);
}

/// A set env var whose value is a non-empty string, or `None`.
fn env_path(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|path| !path.is_empty())
}

/// Starts the node, wrapped in the sinks the environment asks for —
/// a `JsonlSink` for `OPTREP_OBS_JSONL`, a `FlightRecorder` for
/// `OPTREP_FLIGHT_JSONL` — when the `obs` feature is on. Sinks are
/// installed *before* [`Node::start`] so the node's threads inherit
/// them.
fn run_traced(config: NodeConfig) {
    let serve = move || {
        let node = match Node::start(config) {
            Ok(node) => node,
            Err(e) => {
                eprintln!("optrepd: {e}");
                std::process::exit(1);
            }
        };
        if let Some(replay) = node.replay_report() {
            println!(
                "optrepd site {} recovered {} entries \
                 (snapshot {} bytes seq {}, wal {} applied {} skipped{}) in {:?}",
                node.site(),
                replay.entries,
                replay.snapshot_bytes,
                replay.snapshot_seq,
                replay.wal_records_applied,
                replay.wal_records_skipped,
                if replay.torn_tail {
                    ", torn tail dropped"
                } else {
                    ""
                },
                replay.elapsed,
            );
        }
        println!("optrepd site {} listening on {}", node.site(), node.addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        // Unix: watch for SIGINT/SIGTERM and shut down gracefully —
        // final checkpoint, WAL fsync, pooled connections FINned — then
        // return so the obs scope below flushes its sinks on the way
        // out. Elsewhere: block until killed, as before.
        #[cfg(unix)]
        {
            signals::install();
            while !signals::requested() {
                std::thread::sleep(Duration::from_millis(50));
            }
            println!("optrepd site {} shutting down", node.site());
            let _ = std::io::stdout().flush();
            node.stop();
        }
        #[cfg(not(unix))]
        node.wait();
    };
    let trace_path = env_path("OPTREP_OBS_JSONL");
    let flight_path = env_path("OPTREP_FLIGHT_JSONL");
    if trace_path.is_none() && flight_path.is_none() {
        serve();
        return;
    }
    #[cfg(feature = "obs")]
    {
        use optrep_core::obs;
        let mut sinks: Vec<std::sync::Arc<dyn obs::Sink>> = Vec::new();
        if let Some(path) = trace_path {
            // Line-buffered, not block-buffered: daemons die by
            // signal, so every event must reach the file as it is
            // emitted or the trace ends mid-buffer.
            match std::fs::File::create(&path) {
                Ok(file) => sinks.push(std::sync::Arc::new(obs::JsonlSink::new(Box::new(
                    std::io::LineWriter::new(file),
                )))),
                Err(e) => {
                    eprintln!("optrepd: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(path) = flight_path {
            let slow_ms = std::env::var("OPTREP_FLIGHT_SLOW_MS")
                .ok()
                .and_then(|raw| raw.parse::<u64>().ok())
                .unwrap_or(250);
            match obs::FlightRecorder::create(&path, Duration::from_millis(slow_ms)) {
                Ok(recorder) => sinks.push(std::sync::Arc::new(recorder)),
                Err(e) => {
                    eprintln!("optrepd: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        obs::with_all(sinks, serve);
    }
    #[cfg(not(feature = "obs"))]
    {
        eprintln!(
            "optrepd: OPTREP_OBS_JSONL / OPTREP_FLIGHT_JSONL is set but the \
             `obs` feature is disabled; no trace will be written"
        );
        serve();
    }
}
