//! The `optrepd` daemon: one replica site served over TCP.
//!
//! ```text
//! optrepd --site <id> --listen <addr> [--peer <addr>]... [--gossip-ms <n>]
//! ```
//!
//! * `--site` — this replica's site id: a numeric index, a letter
//!   (`A` = 0), or the `S<n>` form.
//! * `--listen` — bind address, e.g. `127.0.0.1:7701` (port 0 picks an
//!   ephemeral port; the bound address is printed on startup).
//! * `--peer` — a peer daemon to pull from periodically; repeatable.
//! * `--gossip-ms` — gossip period in milliseconds (default 500 when
//!   peers are given, off otherwise).
//!
//! With the `obs` feature, `OPTREP_OBS_JSONL=<path>` streams every sync
//! event the daemon's contacts emit to `<path>`; validate it with
//! `tables --check-jsonl <path>`.
//!
//! The daemon prints one `listening on <addr>` line once reachable and
//! runs until killed.

use optrep_core::SiteId;
use optrep_replication::RetryPolicy;
use optrep_server::{Node, NodeConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: optrepd --site <id> --listen <addr> [--peer <addr>]... [--gossip-ms <n>]");
    std::process::exit(2)
}

fn parse_site(s: &str) -> SiteId {
    SiteId::parse(s)
        .or_else(|| s.parse::<u32>().ok().map(SiteId::new))
        .unwrap_or_else(|| {
            eprintln!("optrepd: bad site id: {s}");
            std::process::exit(2)
        })
}

fn parse_addr(s: &str) -> SocketAddr {
    s.parse().unwrap_or_else(|_| {
        eprintln!("optrepd: bad address: {s}");
        std::process::exit(2)
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut site: Option<SiteId> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut gossip_ms: Option<u64> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("optrepd: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--site" => site = Some(parse_site(&value("--site"))),
            "--listen" => listen = Some(parse_addr(&value("--listen"))),
            "--peer" => peers.push(parse_addr(&value("--peer"))),
            "--gossip-ms" => {
                let raw = value("--gossip-ms");
                match raw.parse::<u64>() {
                    Ok(ms) => gossip_ms = Some(ms),
                    Err(_) => {
                        eprintln!("optrepd: bad gossip period: {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("optrepd: unknown argument: {other}");
                usage()
            }
        }
    }
    let (Some(site), Some(listen)) = (site, listen) else {
        usage()
    };
    let gossip = match (gossip_ms, peers.is_empty()) {
        (Some(ms), _) => Some(Duration::from_millis(ms.max(1))),
        (None, false) => Some(Duration::from_millis(500)),
        (None, true) => None,
    };
    let mut config = NodeConfig::new(site, listen)
        .with_peers(peers)
        .with_retry(RetryPolicy::default());
    if let Some(interval) = gossip {
        config = config.with_gossip(interval);
    }
    run_traced(config);
}

/// Starts the node, wrapped in a `JsonlSink` when `OPTREP_OBS_JSONL`
/// is set and the `obs` feature is on. The sink is installed *before*
/// [`Node::start`] so the node's threads inherit it.
fn run_traced(config: NodeConfig) {
    let serve = move || {
        let node = match Node::start(config) {
            Ok(node) => node,
            Err(e) => {
                eprintln!("optrepd: {e}");
                std::process::exit(1);
            }
        };
        println!("optrepd site {} listening on {}", node.site(), node.addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        node.wait();
    };
    match std::env::var("OPTREP_OBS_JSONL") {
        Ok(path) if !path.is_empty() => {
            #[cfg(feature = "obs")]
            {
                use optrep_core::obs;
                // Line-buffered, not block-buffered: daemons die by
                // signal, so every event must reach the file as it is
                // emitted or the trace ends mid-buffer.
                let sink = match std::fs::File::create(&path) {
                    Ok(file) => std::sync::Arc::new(obs::JsonlSink::new(Box::new(
                        std::io::LineWriter::new(file),
                    ))),
                    Err(e) => {
                        eprintln!("optrepd: cannot create {path}: {e}");
                        std::process::exit(2);
                    }
                };
                obs::with(sink, serve);
            }
            #[cfg(not(feature = "obs"))]
            {
                eprintln!(
                    "optrepd: OPTREP_OBS_JSONL is set but the `obs` feature is \
                     disabled; no trace will be written"
                );
                serve();
            }
        }
        _ => serve(),
    }
}
