//! The `optrepd` daemon: one replica site served over TCP.
//!
//! ```text
//! optrepd --site <id> --listen <addr> [--peer <addr>]... [--gossip-ms <n>]
//! ```
//!
//! * `--site` — this replica's site id: a numeric index, a letter
//!   (`A` = 0), or the `S<n>` form.
//! * `--listen` — bind address, e.g. `127.0.0.1:7701` (port 0 picks an
//!   ephemeral port; the bound address is printed on startup).
//! * `--peer` — a peer daemon to pull from periodically; repeatable.
//! * `--gossip-ms` — gossip period in milliseconds (default 500 when
//!   peers are given, off otherwise).
//!
//! With the `obs` feature, `OPTREP_OBS_JSONL=<path>` streams every sync
//! event the daemon's contacts emit to `<path>`; validate it with
//! `tables --check-jsonl <path>`. `OPTREP_FLIGHT_JSONL=<path>` arms the
//! slow-contact flight recorder: each contact's recent events ride a
//! bounded ring, and rings of contacts slower than
//! `OPTREP_FLIGHT_SLOW_MS` (default 250) — or aborted ones — are dumped
//! to `<path>` as JSONL. Both can be set at once; they are independent
//! sinks over the same event stream.
//!
//! The daemon prints one `listening on <addr>` line once reachable and
//! runs until killed.

use optrep_core::SiteId;
use optrep_replication::RetryPolicy;
use optrep_server::{Node, NodeConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: optrepd --site <id> --listen <addr> [--peer <addr>]... [--gossip-ms <n>]");
    std::process::exit(2)
}

fn parse_site(s: &str) -> SiteId {
    SiteId::parse(s)
        .or_else(|| s.parse::<u32>().ok().map(SiteId::new))
        .unwrap_or_else(|| {
            eprintln!("optrepd: bad site id: {s}");
            std::process::exit(2)
        })
}

fn parse_addr(s: &str) -> SocketAddr {
    s.parse().unwrap_or_else(|_| {
        eprintln!("optrepd: bad address: {s}");
        std::process::exit(2)
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut site: Option<SiteId> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut gossip_ms: Option<u64> = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("optrepd: {flag} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--site" => site = Some(parse_site(&value("--site"))),
            "--listen" => listen = Some(parse_addr(&value("--listen"))),
            "--peer" => peers.push(parse_addr(&value("--peer"))),
            "--gossip-ms" => {
                let raw = value("--gossip-ms");
                match raw.parse::<u64>() {
                    Ok(ms) => gossip_ms = Some(ms),
                    Err(_) => {
                        eprintln!("optrepd: bad gossip period: {raw}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("optrepd: unknown argument: {other}");
                usage()
            }
        }
    }
    let (Some(site), Some(listen)) = (site, listen) else {
        usage()
    };
    let gossip = match (gossip_ms, peers.is_empty()) {
        (Some(ms), _) => Some(Duration::from_millis(ms.max(1))),
        (None, false) => Some(Duration::from_millis(500)),
        (None, true) => None,
    };
    let mut config = NodeConfig::new(site, listen)
        .with_peers(peers)
        .with_retry(RetryPolicy::default());
    if let Some(interval) = gossip {
        config = config.with_gossip(interval);
    }
    run_traced(config);
}

/// A set env var whose value is a non-empty string, or `None`.
fn env_path(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|path| !path.is_empty())
}

/// Starts the node, wrapped in the sinks the environment asks for —
/// a `JsonlSink` for `OPTREP_OBS_JSONL`, a `FlightRecorder` for
/// `OPTREP_FLIGHT_JSONL` — when the `obs` feature is on. Sinks are
/// installed *before* [`Node::start`] so the node's threads inherit
/// them.
fn run_traced(config: NodeConfig) {
    let serve = move || {
        let node = match Node::start(config) {
            Ok(node) => node,
            Err(e) => {
                eprintln!("optrepd: {e}");
                std::process::exit(1);
            }
        };
        println!("optrepd site {} listening on {}", node.site(), node.addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        node.wait();
    };
    let trace_path = env_path("OPTREP_OBS_JSONL");
    let flight_path = env_path("OPTREP_FLIGHT_JSONL");
    if trace_path.is_none() && flight_path.is_none() {
        serve();
        return;
    }
    #[cfg(feature = "obs")]
    {
        use optrep_core::obs;
        let mut sinks: Vec<std::sync::Arc<dyn obs::Sink>> = Vec::new();
        if let Some(path) = trace_path {
            // Line-buffered, not block-buffered: daemons die by
            // signal, so every event must reach the file as it is
            // emitted or the trace ends mid-buffer.
            match std::fs::File::create(&path) {
                Ok(file) => sinks.push(std::sync::Arc::new(obs::JsonlSink::new(Box::new(
                    std::io::LineWriter::new(file),
                )))),
                Err(e) => {
                    eprintln!("optrepd: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(path) = flight_path {
            let slow_ms = std::env::var("OPTREP_FLIGHT_SLOW_MS")
                .ok()
                .and_then(|raw| raw.parse::<u64>().ok())
                .unwrap_or(250);
            match obs::FlightRecorder::create(&path, Duration::from_millis(slow_ms)) {
                Ok(recorder) => sinks.push(std::sync::Arc::new(recorder)),
                Err(e) => {
                    eprintln!("optrepd: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        obs::with_all(sinks, serve);
    }
    #[cfg(not(feature = "obs"))]
    {
        eprintln!(
            "optrepd: OPTREP_OBS_JSONL / OPTREP_FLIGHT_JSONL is set but the \
             `obs` feature is disabled; no trace will be written"
        );
        serve();
    }
}
