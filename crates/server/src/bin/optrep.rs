//! The `optrep` client: one or more verbs against one daemon over a
//! single connection, then exit — plus `optrep top`, a polling live
//! fleet view across many daemons.
//!
//! ```text
//! optrep <daemon-addr> <verb> [args] [<verb> [args] ...]
//! verbs: get <key> | put <key> <value> | delete <key> |
//!        status | digest | sync <peer-addr> | metrics
//! optrep top [--interval-ms <n>] [--iters <n>] <addr> [<addr> ...]
//! ```
//!
//! Verbs chain: `optrep 127.0.0.1:7701 put a 1 put b 2 status` runs
//! all three request/response exchanges over the same TCP connection —
//! the daemon sees one verb session, not three dials. `sync` asks the
//! daemon to pull from `<peer-addr>` and prints the pull report.
//! `digest` prints the site-independent replica digest as hex — equal
//! digests across daemons mean converged replicas. `metrics` prints the
//! daemon's metric families in Prometheus text exposition format, so a
//! daemon is scrapeable with nothing but this binary and a pipe.
//! Exit status is 0 when every verb succeeded, 1 on the first failed
//! verb (later verbs are not run), 2 on usage errors (nothing is run).
//!
//! `optrep top` polls `status` + `metrics` from every listed daemon on
//! one persistent connection each and renders a per-daemon table row:
//! uptime, store shape, contact count and latency p50/p99, wire bytes,
//! live pooled connections, sync-worker queue depth and quarantined
//! peers. `--iters 1` prints one table and exits (scriptable);
//! otherwise it redraws every `--interval-ms` (default 1000).

use optrep_core::obs::MetricsSnapshot;
use optrep_net::ConnectOptions;
use optrep_server::proto::StatusInfo;
use optrep_server::Client;
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: optrep <addr> <verb> [args] [<verb> [args] ...]\n\
         verbs: get <key> | put <key> <value> | delete <key> | \
         status | digest | sync <peer> | metrics\n\
         or:    optrep top [--interval-ms <n>] [--iters <n>] <addr> [<addr> ...]"
    );
    std::process::exit(2)
}

/// One parsed verb; argument counts already validated.
enum Verb {
    Get(String),
    Put(String, String),
    Delete(String),
    Status,
    Digest,
    Sync(String),
    Metrics,
}

/// Parses the whole command line greedily, verb by verb, so a typo in
/// the fourth verb is caught before the first one runs.
fn parse(args: &[String]) -> Option<Vec<Verb>> {
    let mut verbs = Vec::new();
    let mut rest = args;
    while let [verb, tail @ ..] = rest {
        let (parsed, tail) = match (verb.as_str(), tail) {
            ("get", [key, tail @ ..]) => (Verb::Get(key.clone()), tail),
            ("put", [key, value, tail @ ..]) => (Verb::Put(key.clone(), value.clone()), tail),
            ("delete", [key, tail @ ..]) => (Verb::Delete(key.clone()), tail),
            ("status", tail) => (Verb::Status, tail),
            ("digest", tail) => (Verb::Digest, tail),
            ("sync", [peer, tail @ ..]) => (Verb::Sync(peer.clone()), tail),
            ("metrics", tail) => (Verb::Metrics, tail),
            _ => return None,
        };
        verbs.push(parsed);
        rest = tail;
    }
    if verbs.is_empty() {
        return None;
    }
    Some(verbs)
}

fn run(client: &mut Client, verb: &Verb) -> optrep_core::Result<()> {
    match verb {
        Verb::Get(key) => client.get(key).map(|value| match value {
            Some(v) => match std::str::from_utf8(&v) {
                Ok(text) => println!("{text}"),
                Err(_) => println!("{v:?}"),
            },
            None => println!("(nil)"),
        }),
        Verb::Put(key, value) => client.put(key, value.clone().into_bytes()),
        Verb::Delete(key) => client.delete(key),
        Verb::Status => client.status().map(|info| {
            println!(
                "site {} keys {} tracked {} generation {} \
                 conn-dials {} conn-contacts {} conn-live {} \
                 uptime {} metrics-seq {} \
                 wal-records {} wal-bytes {} wal-fsyncs {} ckpt-seq {}",
                info.site,
                info.keys,
                info.tracked,
                info.generation,
                info.conn_dials,
                info.conn_contacts,
                info.conn_live,
                info.uptime_secs,
                info.metrics_seq,
                info.wal_records,
                info.wal_bytes,
                info.wal_fsyncs,
                info.wal_checkpoint_seq,
            );
        }),
        Verb::Digest => client.digest().map(|digest| println!("{digest:016x}")),
        Verb::Sync(peer) => client.sync(peer).map(|report| {
            println!(
                "examined {} created {} fast-forwarded {} reconciled {} \
                 unchanged {} meta-bytes {} value-bytes {}",
                report.keys_examined,
                report.keys_created,
                report.keys_fast_forwarded,
                report.keys_reconciled,
                report.keys_unchanged,
                report.meta_bytes,
                report.value_bytes,
            );
        }),
        Verb::Metrics => client
            .metrics()
            .map(|snapshot| print!("{}", snapshot.to_prometheus())),
    }
}

fn verb_name(verb: &Verb) -> &'static str {
    match verb {
        Verb::Get(_) => "get",
        Verb::Put(..) => "put",
        Verb::Delete(_) => "delete",
        Verb::Status => "status",
        Verb::Digest => "digest",
        Verb::Sync(_) => "sync",
        Verb::Metrics => "metrics",
    }
}

/// One daemon in the `top` fleet: its address plus the persistent
/// connection, re-dialled lazily after any failure so a daemon that
/// restarts mid-watch comes back as soon as it answers again.
struct FleetPeer {
    addr: SocketAddr,
    client: Option<Client>,
}

impl FleetPeer {
    /// Polls `status` + `metrics` over the persistent connection,
    /// dialling first if the previous tick failed.
    fn poll(&mut self) -> optrep_core::Result<(StatusInfo, MetricsSnapshot)> {
        if self.client.is_none() {
            self.client = Some(Client::connect(self.addr, &ConnectOptions::default())?);
        }
        let client = self.client.as_mut().expect("client just ensured");
        let polled = client.status().and_then(|s| Ok((s, client.metrics()?)));
        if polled.is_err() {
            self.client = None;
        }
        polled
    }
}

/// Formats one fleet-table row from a successful poll.
///
/// Latency quantiles come from the `optrep_contact_micros` histogram;
/// wire bytes are the four per-plane byte counters summed, matching
/// how `SessionTotals::wire_bytes()` counts them on the daemon side.
fn top_row(addr: SocketAddr, status: &StatusInfo, metrics: &MetricsSnapshot) -> String {
    let contacts = metrics
        .counter("optrep_contacts_total")
        .unwrap_or(status.conn_contacts);
    let latency = metrics.histogram("optrep_contact_micros");
    let (p50, p99) = latency
        .map(|h| (h.p50() as f64 / 1000.0, h.p99() as f64 / 1000.0))
        .unwrap_or((0.0, 0.0));
    let bytes: u64 = [
        "optrep_compare_bytes_total",
        "optrep_meta_bytes_total",
        "optrep_framing_bytes_total",
        "optrep_payload_bytes_total",
    ]
    .iter()
    .filter_map(|name| metrics.counter(name))
    .sum();
    format!(
        "{:<4} {:<21} {:>6} {:>6} {:>5} {:>8} {:>9.2} {:>9.2} {:>10} {:>4} {:>5} {:>4}",
        status.site,
        addr,
        status.uptime_secs,
        status.keys,
        status.generation,
        contacts,
        p50,
        p99,
        bytes,
        status.conn_live,
        metrics.gauge("optrep_worker_queue_depth").unwrap_or(0),
        metrics.gauge("optrep_quarantined_peers").unwrap_or(0),
    )
}

/// `optrep top`: poll every daemon each tick and redraw the table.
///
/// `iters == 0` runs forever; `--iters 1` prints one table with no
/// screen clearing, so scripts (and CI) can grep the output.
fn top(addrs: &[SocketAddr], interval: std::time::Duration, iters: u64) -> ! {
    let mut fleet: Vec<FleetPeer> = addrs
        .iter()
        .map(|&addr| FleetPeer { addr, client: None })
        .collect();
    let mut tick = 0u64;
    loop {
        let rows: Vec<String> = fleet
            .iter_mut()
            .map(|peer| match peer.poll() {
                Ok((status, metrics)) => top_row(peer.addr, &status, &metrics),
                Err(e) => format!("{:<4} {:<21} unreachable: {e}", "-", peer.addr),
            })
            .collect();
        if iters != 1 {
            // Clear and re-home only when actually animating.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "{:<4} {:<21} {:>6} {:>6} {:>5} {:>8} {:>9} {:>9} {:>10} {:>4} {:>5} {:>4}",
            "SITE",
            "ADDR",
            "UP(S)",
            "KEYS",
            "GEN",
            "CONTACT",
            "P50(MS)",
            "P99(MS)",
            "BYTES",
            "LIVE",
            "WORKQ",
            "QUAR",
        );
        for row in rows {
            println!("{row}");
        }
        use std::io::Write;
        let _ = std::io::stdout().flush();
        tick += 1;
        if iters != 0 && tick >= iters {
            std::process::exit(0);
        }
        std::thread::sleep(interval);
    }
}

/// Parses `top`'s own arguments: interleaved `--interval-ms`/`--iters`
/// options and one or more daemon addresses.
fn parse_top(args: &[String]) -> ! {
    let mut addrs = Vec::new();
    let mut interval_ms = 1000u64;
    let mut iters = 0u64;
    let mut rest = args;
    while let [arg, tail @ ..] = rest {
        rest = match (arg.as_str(), tail) {
            ("--interval-ms", [value, tail @ ..]) => {
                interval_ms = value.parse().unwrap_or_else(|_| usage());
                tail
            }
            ("--iters", [value, tail @ ..]) => {
                iters = value.parse().unwrap_or_else(|_| usage());
                tail
            }
            (addr, tail) => {
                addrs.push(addr.parse::<SocketAddr>().unwrap_or_else(|_| {
                    eprintln!("optrep: bad daemon address: {addr}");
                    std::process::exit(2)
                }));
                tail
            }
        };
    }
    if addrs.is_empty() {
        usage()
    }
    top(&addrs, std::time::Duration::from_millis(interval_ms), iters)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [addr, rest @ ..] = args.as_slice() else {
        usage()
    };
    if addr == "top" {
        parse_top(rest);
    }
    let Some(verbs) = parse(rest) else { usage() };
    let addr: SocketAddr = addr.parse().unwrap_or_else(|_| {
        eprintln!("optrep: bad daemon address: {addr}");
        std::process::exit(2)
    });
    let mut client = match Client::connect(addr, &ConnectOptions::default()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("optrep: cannot reach {addr}: {e}");
            std::process::exit(1)
        }
    };
    for verb in &verbs {
        if let Err(e) = run(&mut client, verb) {
            eprintln!("optrep: {} failed: {e}", verb_name(verb));
            std::process::exit(1);
        }
    }
}
