//! The `optrep` client: one or more verbs against one daemon over a
//! single connection, then exit.
//!
//! ```text
//! optrep <daemon-addr> <verb> [args] [<verb> [args] ...]
//! verbs: get <key> | put <key> <value> | delete <key> |
//!        status | digest | sync <peer-addr>
//! ```
//!
//! Verbs chain: `optrep 127.0.0.1:7701 put a 1 put b 2 status` runs
//! all three request/response exchanges over the same TCP connection —
//! the daemon sees one verb session, not three dials. `sync` asks the
//! daemon to pull from `<peer-addr>` and prints the pull report.
//! `digest` prints the site-independent replica digest as hex — equal
//! digests across daemons mean converged replicas. Exit status is 0
//! when every verb succeeded, 1 on the first failed verb (later verbs
//! are not run), 2 on usage errors (nothing is run).

use optrep_net::ConnectOptions;
use optrep_server::Client;
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: optrep <addr> <verb> [args] [<verb> [args] ...]\n\
         verbs: get <key> | put <key> <value> | delete <key> | \
         status | digest | sync <peer>"
    );
    std::process::exit(2)
}

/// One parsed verb; argument counts already validated.
enum Verb {
    Get(String),
    Put(String, String),
    Delete(String),
    Status,
    Digest,
    Sync(String),
}

/// Parses the whole command line greedily, verb by verb, so a typo in
/// the fourth verb is caught before the first one runs.
fn parse(args: &[String]) -> Option<Vec<Verb>> {
    let mut verbs = Vec::new();
    let mut rest = args;
    while let [verb, tail @ ..] = rest {
        let (parsed, tail) = match (verb.as_str(), tail) {
            ("get", [key, tail @ ..]) => (Verb::Get(key.clone()), tail),
            ("put", [key, value, tail @ ..]) => (Verb::Put(key.clone(), value.clone()), tail),
            ("delete", [key, tail @ ..]) => (Verb::Delete(key.clone()), tail),
            ("status", tail) => (Verb::Status, tail),
            ("digest", tail) => (Verb::Digest, tail),
            ("sync", [peer, tail @ ..]) => (Verb::Sync(peer.clone()), tail),
            _ => return None,
        };
        verbs.push(parsed);
        rest = tail;
    }
    if verbs.is_empty() {
        return None;
    }
    Some(verbs)
}

fn run(client: &mut Client, verb: &Verb) -> optrep_core::Result<()> {
    match verb {
        Verb::Get(key) => client.get(key).map(|value| match value {
            Some(v) => match std::str::from_utf8(&v) {
                Ok(text) => println!("{text}"),
                Err(_) => println!("{v:?}"),
            },
            None => println!("(nil)"),
        }),
        Verb::Put(key, value) => client.put(key, value.clone().into_bytes()),
        Verb::Delete(key) => client.delete(key),
        Verb::Status => client.status().map(|info| {
            println!(
                "site {} keys {} tracked {} generation {} \
                 conn-dials {} conn-contacts {} conn-live {}",
                info.site,
                info.keys,
                info.tracked,
                info.generation,
                info.conn_dials,
                info.conn_contacts,
                info.conn_live,
            );
        }),
        Verb::Digest => client.digest().map(|digest| println!("{digest:016x}")),
        Verb::Sync(peer) => client.sync(peer).map(|report| {
            println!(
                "examined {} created {} fast-forwarded {} reconciled {} \
                 unchanged {} meta-bytes {} value-bytes {}",
                report.keys_examined,
                report.keys_created,
                report.keys_fast_forwarded,
                report.keys_reconciled,
                report.keys_unchanged,
                report.meta_bytes,
                report.value_bytes,
            );
        }),
    }
}

fn verb_name(verb: &Verb) -> &'static str {
    match verb {
        Verb::Get(_) => "get",
        Verb::Put(..) => "put",
        Verb::Delete(_) => "delete",
        Verb::Status => "status",
        Verb::Digest => "digest",
        Verb::Sync(_) => "sync",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [addr, rest @ ..] = args.as_slice() else {
        usage()
    };
    let Some(verbs) = parse(rest) else { usage() };
    let addr: SocketAddr = addr.parse().unwrap_or_else(|_| {
        eprintln!("optrep: bad daemon address: {addr}");
        std::process::exit(2)
    });
    let mut client = match Client::connect(addr, &ConnectOptions::default()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("optrep: cannot reach {addr}: {e}");
            std::process::exit(1)
        }
    };
    for verb in &verbs {
        if let Err(e) = run(&mut client, verb) {
            eprintln!("optrep: {} failed: {e}", verb_name(verb));
            std::process::exit(1);
        }
    }
}
