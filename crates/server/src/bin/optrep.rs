//! The `optrep` client: one verb against one daemon, then exit.
//!
//! ```text
//! optrep <daemon-addr> get <key>
//! optrep <daemon-addr> put <key> <value>
//! optrep <daemon-addr> delete <key>
//! optrep <daemon-addr> status
//! optrep <daemon-addr> digest
//! optrep <daemon-addr> sync <peer-addr>
//! ```
//!
//! `sync` asks the daemon at `<daemon-addr>` to pull from
//! `<peer-addr>` and prints the pull report. `digest` prints the
//! site-independent replica digest as hex — equal digests across
//! daemons mean converged replicas. Exit status is 0 on success, 1 on
//! a failed verb, 2 on usage errors.

use optrep_net::ConnectOptions;
use optrep_server::Client;
use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: optrep <addr> <verb> [...]\n\
         verbs: get <key> | put <key> <value> | delete <key> | \
         status | digest | sync <peer>"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, verb, rest) = match args.as_slice() {
        [addr, verb, rest @ ..] => (addr, verb.as_str(), rest),
        _ => usage(),
    };
    let addr: SocketAddr = addr.parse().unwrap_or_else(|_| {
        eprintln!("optrep: bad daemon address: {addr}");
        std::process::exit(2)
    });
    let mut client = match Client::connect(addr, &ConnectOptions::default()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("optrep: cannot reach {addr}: {e}");
            std::process::exit(1)
        }
    };
    let outcome = match (verb, rest) {
        ("get", [key]) => client.get(key).map(|value| match value {
            Some(v) => match std::str::from_utf8(&v) {
                Ok(text) => println!("{text}"),
                Err(_) => println!("{v:?}"),
            },
            None => println!("(nil)"),
        }),
        ("put", [key, value]) => client.put(key, value.clone().into_bytes()),
        ("delete", [key]) => client.delete(key),
        ("status", []) => client.status().map(|(site, keys, tracked, generation)| {
            println!("site {site} keys {keys} tracked {tracked} generation {generation}");
        }),
        ("digest", []) => client.digest().map(|digest| println!("{digest:016x}")),
        ("sync", [peer]) => client.sync(peer).map(|report| {
            println!(
                "examined {} created {} fast-forwarded {} reconciled {} \
                 unchanged {} meta-bytes {} value-bytes {}",
                report.keys_examined,
                report.keys_created,
                report.keys_fast_forwarded,
                report.keys_reconciled,
                report.keys_unchanged,
                report.meta_bytes,
                report.value_bytes,
            );
        }),
        _ => usage(),
    };
    if let Err(e) = outcome {
        eprintln!("optrep: {verb} failed: {e}");
        std::process::exit(1);
    }
}
