//! The `optrepd` node: event-driven connection core, verb service,
//! pull service, persistent peer pulls, gossip.
//!
//! A [`Node`] owns one [`KvStore`] behind a mutex and serves it over
//! real sockets. Every connection opens with a
//! [`Handshake`](wire::Handshake) frame; its
//! [`Intent`](wire::Intent) selects the service:
//!
//! * **Verbs** — a request/response exchange speaking
//!   [`proto`](crate::proto) on the control stream
//!   (`get`/`put`/`delete`/`status`/`digest`/`sync`).
//! * **Pull** — the connector drives one batched anti-entropy contact
//!   as the pulling side and the connection ends with it.
//! * **Peer** — a persistent pulling connection: successive contacts
//!   pipeline over the same socket, each served from a fresh
//!   [`server_endpoint`](KvStore::server_endpoint) snapshot taken at
//!   its first frame.
//!
//! On unix, all connections are multiplexed onto **one event thread**:
//! a `poll(2)` loop (see `optrep_net::reactor`) drives per-connection
//! state machines (`Handshake → Verbs | Serve → Closing`), so the
//! daemon's thread count is fixed — event loop, optional gossip thread,
//! and one lazily started executor for blocking verbs — no matter how
//! many hundreds of peers are connected. Cheap verbs and contact frames
//! are handled inline on the event thread (the store lock is held only
//! for in-memory work, never across socket I/O); the `sync` verb, which
//! performs a network pull, runs on the executor so it cannot stall the
//! loop. Accept errors back off exponentially up to a cap instead of
//! hot-looping. Non-unix builds keep a thread-per-connection fallback
//! with the same wire behavior.
//!
//! Outbound pulls ([`Node::sync_with`], the `sync` verb, and the
//! periodic gossip thread) draw persistent connections from a
//! [`ConnPool`]: the first pull to a peer dials and handshakes
//! ([`Intent::Peer`]) once, and every later pull pipelines over that
//! socket; a stale pooled connection is discarded and redialed once,
//! folding reconnects into the callers' existing retry schedules. Each
//! pull runs the generation-checked discipline `KvStore::generation`
//! was built for: snapshot the client endpoint under the lock, release
//! it for the whole network exchange, re-lock and commit only if no
//! local write raced the pull — otherwise retry against fresh metadata.
//! A connection that dies mid-contact therefore aborts before anything
//! is staged, leaving the store byte-identical.

use crate::persist::{DurabilityConfig, Persist, ReplayReport};
use crate::proto::{Request, Response, StatusInfo};
use optrep_core::obs::metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSink, MetricsSnapshot,
};
use optrep_core::obs::{self, Sink};
use optrep_core::wire::{Handshake, Intent};
use optrep_core::{Error, Result, SiteId};
use optrep_kv::{JoinResolver, KvStore, KvSyncReport};
use optrep_net::{ConnPool, ConnectOptions, PoolMetrics};
use optrep_replication::{
    run_contact_pipelined, serve_frame, BatchPullServer, RetryPolicy, ServeStep, CONTROL_STREAM,
};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Shutdown-poll slice for gossip sleeps (and the non-unix accept poll).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// First backoff after a transient accept error; doubles per
/// consecutive error up to [`ACCEPT_BACKOFF_CAP`].
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(5);

/// Upper bound on the accept-error backoff: a persistent error
/// condition (fd exhaustion, say) retries at this period instead of
/// spinning.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// How many times an outbound pull retries after racing a local write
/// (the exchange itself succeeded; only the commit was stale).
const APPLY_RACE_RETRIES: u32 = 3;

/// Configuration for one [`Node`].
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This replica's site id.
    pub site: SiteId,
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Node::addr`]).
    pub listen: SocketAddr,
    /// Peers the gossip thread pulls from, round-robin.
    pub peers: Vec<SocketAddr>,
    /// Gossip period; `None` disables the gossip thread (pulls then
    /// happen only via `optrep sync` / [`Node::sync_with`]).
    pub gossip_interval: Option<Duration>,
    /// Retry budget for outbound pulls (attempts per peer per gossip
    /// tick; the same policy shape the in-process engine uses).
    pub retry: RetryPolicy,
    /// Socket dial/deadline policy for every connection this node opens
    /// or accepts.
    pub connect: ConnectOptions,
    /// Feed per-event metric families (contact histograms, byte
    /// counters) from the sync-event stream. On by default; benches
    /// turn it off to measure the sink's own overhead. Gauges and the
    /// runtime-internal histograms stay live either way.
    pub metrics_events: bool,
    /// Durable state (write-ahead log + snapshot checkpoints) in a data
    /// dir. `None` — the default — keeps the store memory-only, exactly
    /// the pre-durability behavior.
    pub durability: Option<DurabilityConfig>,
}

impl NodeConfig {
    /// A node for `site` listening on `listen`, no peers, no gossip,
    /// default retry and socket policies.
    pub fn new(site: SiteId, listen: SocketAddr) -> Self {
        NodeConfig {
            site,
            listen,
            peers: Vec::new(),
            gossip_interval: None,
            retry: RetryPolicy::default(),
            connect: ConnectOptions::default(),
            metrics_events: true,
            durability: None,
        }
    }

    /// Adds gossip peers.
    #[must_use]
    pub fn with_peers(mut self, peers: impl IntoIterator<Item = SocketAddr>) -> Self {
        self.peers.extend(peers);
        self
    }

    /// Enables the periodic gossip thread.
    #[must_use]
    pub fn with_gossip(mut self, interval: Duration) -> Self {
        self.gossip_interval = Some(interval);
        self
    }

    /// Sets the outbound pull retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the socket dial/deadline policy.
    #[must_use]
    pub fn with_connect(mut self, connect: ConnectOptions) -> Self {
        self.connect = connect;
        self
    }

    /// Enables or disables event-driven metric families (see
    /// [`NodeConfig::metrics_events`]).
    #[must_use]
    pub fn with_metrics_events(mut self, enabled: bool) -> Self {
        self.metrics_events = enabled;
        self
    }

    /// Makes the node durable with these WAL/checkpoint settings.
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Makes the node durable in `data_dir` with the default policies
    /// (what `optrepd --data-dir` without further flags gives).
    #[must_use]
    pub fn with_data_dir(self, data_dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_durability(DurabilityConfig::new(data_dir))
    }
}

/// A finished blocking verb on its way back from the executor to the
/// event loop, addressed by connection id.
#[cfg(unix)]
struct VerbDone {
    conn: u64,
    stream: u64,
    response: Response,
}

/// The daemon's directly updated metric instruments (gauges sampled at
/// scrape time, histograms fed inline by the runtime internals the
/// event stream never reaches).
struct NodeMetrics {
    uptime_secs: Arc<Gauge>,
    store_keys: Arc<Gauge>,
    store_tracked: Arc<Gauge>,
    store_generation: Arc<Gauge>,
    conn_live: Arc<Gauge>,
    /// Jobs submitted to the sync worker and not yet picked up.
    worker_queue_depth: Arc<Gauge>,
    /// Wall-clock of each verb handled (inline or on the worker).
    verb_service_micros: Arc<Histogram>,
    /// Bytes still buffered per connection each time a socket pushed
    /// back mid-flush — one sample per backpressure incident.
    write_backlog_bytes: Arc<Histogram>,
    /// Peers whose every pull attempt failed in the last gossip pass.
    quarantined_peers: Arc<Gauge>,
    /// WAL records appended (one per committed mutation).
    wal_records_total: Arc<Counter>,
    /// WAL record bytes appended.
    wal_bytes_total: Arc<Counter>,
    /// WAL fsyncs issued (per-append under `always`, batched under
    /// `interval`).
    wal_fsyncs_total: Arc<Counter>,
    /// Snapshot checkpoints written.
    checkpoints_total: Arc<Counter>,
    /// Current WAL file length (header included); sampled at scrape.
    wal_size_bytes: Arc<Gauge>,
    /// WAL sequence the on-disk snapshot covers.
    checkpoint_seq: Arc<Gauge>,
    /// Boot recovery wall-clock — one sample per replay, so restarts
    /// accumulate a recovery-time distribution in the same registry.
    replay_micros: Arc<Histogram>,
    /// Checkpoint wall-clock (snapshot encode + atomic writes + trim).
    checkpoint_micros: Arc<Histogram>,
    #[cfg(unix)]
    reactor: optrep_net::reactor::ReactorMetrics,
}

impl NodeMetrics {
    fn register(registry: &MetricsRegistry) -> NodeMetrics {
        NodeMetrics {
            uptime_secs: registry.gauge("optrep_uptime_secs"),
            store_keys: registry.gauge("optrep_store_keys"),
            store_tracked: registry.gauge("optrep_store_tracked"),
            store_generation: registry.gauge("optrep_store_generation"),
            conn_live: registry.gauge("optrep_conn_live"),
            worker_queue_depth: registry.gauge("optrep_worker_queue_depth"),
            verb_service_micros: registry.histogram("optrep_verb_service_micros"),
            write_backlog_bytes: registry.histogram("optrep_write_backlog_bytes"),
            quarantined_peers: registry.gauge("optrep_quarantined_peers"),
            wal_records_total: registry.counter("optrep_wal_records_total"),
            wal_bytes_total: registry.counter("optrep_wal_bytes_total"),
            wal_fsyncs_total: registry.counter("optrep_wal_fsyncs_total"),
            checkpoints_total: registry.counter("optrep_checkpoints_total"),
            wal_size_bytes: registry.gauge("optrep_wal_size_bytes"),
            checkpoint_seq: registry.gauge("optrep_checkpoint_seq"),
            replay_micros: registry.histogram("optrep_replay_micros"),
            checkpoint_micros: registry.histogram("optrep_checkpoint_micros"),
            #[cfg(unix)]
            reactor: optrep_net::reactor::ReactorMetrics::register(registry, "optrep_reactor"),
        }
    }
}

/// State shared between the connection core, the executor, the gossip
/// thread, and the owning [`Node`] handle.
struct Shared {
    site: SiteId,
    store: Mutex<KvStore>,
    /// The durable layer (WAL append handle + checkpoint bookkeeping),
    /// when configured. **Lock order is store → persist**: every
    /// appender holds the store lock across its append, and a
    /// checkpoint acquires persist while still holding store, so the
    /// two locks together always frame a frozen (store, WAL seq) pair.
    /// Never acquire the store lock while holding this one.
    persist: Option<Mutex<Persist>>,
    /// Durability settings (the background task's checkpoint cadence).
    durability: Option<DurabilityConfig>,
    /// What boot recovery found (durable nodes only).
    replay: Option<ReplayReport>,
    resolver: JoinResolver,
    peers: Vec<SocketAddr>,
    retry: RetryPolicy,
    connect: ConnectOptions,
    /// Persistent outbound peer connections; every pull pipelines over
    /// a pooled socket instead of dialing fresh.
    pool: ConnPool,
    shutdown: AtomicBool,
    /// When the daemon started (`status` uptime, `optrep_uptime_secs`).
    started: Instant,
    /// The daemon's metric families, served by the `Metrics` verb.
    registry: Arc<MetricsRegistry>,
    /// The event-driven sink feeding [`Self::registry`]; installed on
    /// every daemon thread via [`Self::sinks`], and pushed by
    /// [`Node::sync_with`] onto *caller* threads so embedded pulls are
    /// metered too. Inert when [`Self::metrics_events`] is off.
    metrics_sink: Arc<dyn Sink>,
    /// Whether [`Self::metrics_sink`] is wired up (see
    /// [`NodeConfig::metrics_events`]).
    metrics_events: bool,
    metrics: NodeMetrics,
    /// Obs sinks captured at [`Node::start`] plus the daemon's own
    /// [`Self::metrics_sink`]; re-installed on every spawned thread
    /// (shared `Arc`s, as the engine's wave workers do) so socket-driven
    /// contacts trace into the starter's aggregators.
    sinks: Vec<Arc<dyn Sink>>,
    /// Wakes the event loop from other threads: executor completions
    /// and [`Node::stop`].
    #[cfg(unix)]
    waker: optrep_net::reactor::Waker,
    /// Finished executor verbs awaiting delivery by the event loop.
    #[cfg(unix)]
    completions: Mutex<Vec<VerbDone>>,
}

impl Shared {
    /// Locks the store, recovering from a poisoned lock: the store's
    /// transactional apply discipline never leaves it half-written, so
    /// a handler that panicked elsewhere must not wedge the daemon.
    fn store(&self) -> MutexGuard<'_, KvStore> {
        match self.store.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Locks the durable layer, if there is one (same poison recovery
    /// as [`Shared::store`]).
    fn persist(&self) -> Option<MutexGuard<'_, Persist>> {
        self.persist.as_ref().map(|persist| match persist.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        })
    }

    /// Logs the post-states of `keys` as **one** WAL record — a whole
    /// committed mutation, whether a single `put` or everything an
    /// `apply_contact` changed — before that mutation is acknowledged.
    /// Call with the store lock held (the `store` argument is the
    /// guard's referent), so record order matches commit order and a
    /// checkpoint holding both locks sees a frozen pair. No-op on a
    /// memory-only node or an empty commit.
    ///
    /// # Errors
    ///
    /// The append or fsync failure; the caller reports it instead of
    /// acknowledging (the in-memory commit stands — it dies with the
    /// process either way, which is exactly what the log now fails to
    /// prevent).
    fn wal_append(&self, store: &KvStore, keys: &[String]) -> Result<()> {
        let Some(mut persist) = self.persist() else {
            return Ok(());
        };
        if keys.is_empty() {
            return Ok(());
        }
        let changed: Vec<(String, bytes::Bytes)> = keys
            .iter()
            .filter_map(|key| store.encode_entry(key).map(|entry| (key.clone(), entry)))
            .collect();
        debug_assert_eq!(changed.len(), keys.len(), "changed keys must be tracked");
        let fsyncs_before = persist.fsyncs();
        match persist.append(&changed) {
            Ok(bytes) => {
                let m = &self.metrics;
                m.wal_records_total.inc();
                m.wal_bytes_total.add(bytes);
                m.wal_fsyncs_total.add(persist.fsyncs() - fsyncs_before);
                Ok(())
            }
            Err(e) => Err(Error::UnexpectedMessage {
                protocol: "wal",
                message: format!("append failed: {e}"),
            }),
        }
    }

    #[cfg(unix)]
    fn completions(&self) -> MutexGuard<'_, Vec<VerbDone>> {
        match self.completions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running `optrepd` node.
///
/// Dropping the handle does **not** stop the daemon; call
/// [`Node::stop`] (or let the process exit).
pub struct Node {
    shared: Arc<Shared>,
    addr: SocketAddr,
    core: Option<std::thread::JoinHandle<()>>,
    gossip: Option<std::thread::JoinHandle<()>>,
    persist: Option<std::thread::JoinHandle<()>>,
}

impl Node {
    /// Binds the listener and starts the connection core (and the
    /// gossip thread, if configured). Returns once the node is
    /// reachable.
    ///
    /// On a durable node ([`NodeConfig::with_durability`]), the data
    /// dir is recovered first — snapshot, then WAL, dropping a torn
    /// tail — and the node starts serving the recovered store; see
    /// [`Node::replay_report`] for what recovery found.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedMessage`] if the listen address cannot be
    /// bound — an environment problem, not link weather — or if the
    /// data dir fails to recover (I/O trouble, a foreign site's files,
    /// or log corruption anywhere before the tail).
    pub fn start(config: NodeConfig) -> Result<Node> {
        let listener = TcpListener::bind(config.listen).map_err(|e| Error::UnexpectedMessage {
            protocol: "daemon",
            message: format!("cannot bind {}: {e}", config.listen),
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::UnexpectedMessage {
                protocol: "daemon",
                message: format!("listener has no address: {e}"),
            })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::UnexpectedMessage {
                protocol: "daemon",
                message: format!("cannot poll listener: {e}"),
            })?;
        #[cfg(unix)]
        let waker = optrep_net::reactor::Waker::new().map_err(|e| Error::UnexpectedMessage {
            protocol: "daemon",
            message: format!("cannot create event waker: {e}"),
        })?;
        let registry = Arc::new(MetricsRegistry::new());
        let metrics_sink: Arc<dyn Sink> = Arc::new(MetricsSink::new(&registry));
        let metrics = NodeMetrics::register(&registry);
        let pool = ConnPool::new(config.site.index(), config.connect);
        pool.set_metrics(PoolMetrics::register(&registry, "optrep_pool"));
        // Every daemon thread gets the starter's sinks plus the metrics
        // sink, so sync-verb events raised on the worker and gossip
        // threads reach both the user's tracers and the registry.
        let mut sinks = obs::installed();
        if config.metrics_events {
            sinks.push(Arc::clone(&metrics_sink));
        }
        // Recover durable state before the listener serves anything:
        // the first verb must already see the replayed store.
        let (persist, store, replay) = match config.durability.as_ref() {
            Some(durability) => {
                let (persist, store, report) = Persist::open(durability, config.site)?;
                metrics
                    .replay_micros
                    .record(report.elapsed.as_micros() as u64);
                (Some(Mutex::new(persist)), store, Some(report))
            }
            None => (None, KvStore::new(config.site), None),
        };
        let shared = Arc::new(Shared {
            site: config.site,
            store: Mutex::new(store),
            persist,
            durability: config.durability,
            replay,
            resolver: JoinResolver,
            peers: config.peers,
            retry: config.retry,
            connect: config.connect,
            pool,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            registry,
            metrics_sink,
            metrics_events: config.metrics_events,
            metrics,
            sinks,
            #[cfg(unix)]
            waker,
            #[cfg(unix)]
            completions: Mutex::new(Vec::new()),
        });
        #[cfg(unix)]
        let core = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || event::event_loop(&shared, &listener))
        };
        #[cfg(not(unix))]
        let core = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || threaded::accept_loop(&shared, &listener))
        };
        let gossip = config.gossip_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            // The gossip thread needs the shared sinks installed just
            // like the event loop and the executor: without them its
            // pulls' contact/session events silently vanish from
            // daemon-side traces and metrics.
            std::thread::spawn(move || {
                obs::with_all(shared.sinks.clone(), || gossip_loop(&shared, interval))
            })
        });
        let persist = shared.persist.is_some().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || persist_loop(&shared))
        });
        Ok(Node {
            shared,
            addr,
            core: Some(core),
            gossip,
            persist,
        })
    }

    /// The bound listen address (the actual port when configured with 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's site id.
    pub fn site(&self) -> SiteId {
        self.shared.site
    }

    /// Runs `f` with the store locked — the in-process equivalent of a
    /// verb session, for embedding and tests. Mutations made here
    /// bypass the WAL: this is the raw-store escape hatch, not the
    /// durable write path ([`Node::put`]/[`Node::delete`] are).
    pub fn with_store<R>(&self, f: impl FnOnce(&mut KvStore) -> R) -> R {
        f(&mut self.shared.store())
    }

    /// Writes `key` through the full verb path — on a durable node the
    /// post-state is WAL-logged before this returns — without a socket.
    ///
    /// # Errors
    ///
    /// The WAL append/fsync failure on a durable node (never errs on a
    /// memory-only one).
    pub fn put(&self, key: impl Into<String>, value: impl Into<bytes::Bytes>) -> Result<()> {
        let key = key.into();
        let mut store = self.shared.store();
        store.put(key.clone(), value);
        self.shared.wal_append(&store, std::slice::from_ref(&key))
    }

    /// Deletes `key` through the full verb path, durably on a durable
    /// node (the logged post-state is the tombstone).
    ///
    /// # Errors
    ///
    /// The WAL append/fsync failure on a durable node.
    pub fn delete(&self, key: impl Into<String>) -> Result<()> {
        let key = key.into();
        let mut store = self.shared.store();
        store.delete(key.clone());
        self.shared.wal_append(&store, std::slice::from_ref(&key))
    }

    /// What boot recovery found in the data dir (`None` on a
    /// memory-only node).
    pub fn replay_report(&self) -> Option<ReplayReport> {
        self.shared.replay
    }

    /// The site-independent replica digest (`optrep digest`).
    pub fn digest(&self) -> u64 {
        self.shared.store().replica_digest()
    }

    /// This node's outbound peer-connection counters, summed over all
    /// peers (what the `status` verb reports in its `conn_*` fields).
    pub fn conn_totals(&self) -> optrep_net::PoolStats {
        self.shared.pool.totals()
    }

    /// A metrics snapshot, exactly as the `Metrics` verb serves it
    /// (point-in-time gauges refreshed first).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        refresh_gauges(&self.shared);
        self.shared.registry.snapshot()
    }

    /// Pulls from `peer` right now, exactly as the `sync` verb does,
    /// over this node's pooled persistent connection to that peer.
    ///
    /// The daemon's metrics sink rides along on the calling thread (on
    /// top of whatever sinks the caller installed), so embedded pulls
    /// land in the same histograms as verb- and gossip-driven ones.
    ///
    /// # Errors
    ///
    /// Propagates dial, transport, and protocol errors; the store is
    /// untouched unless the pull committed.
    pub fn sync_with(&self, peer: SocketAddr) -> Result<KvSyncReport> {
        if !self.shared.metrics_events {
            return pull_from(&self.shared, peer);
        }
        obs::with(Arc::clone(&self.shared.metrics_sink), || {
            pull_from(&self.shared, peer)
        })
    }

    /// Blocks until the node is stopped.
    pub fn wait(mut self) {
        self.join_threads();
    }

    /// Stops the connection core, gossip, and durability threads,
    /// waits for them, then settles durable state — final checkpoint,
    /// WAL fsync — and FINs the pooled peer connections. After this
    /// returns, a durable node's data dir holds a fresh snapshot and an
    /// empty log: the next boot replays nothing.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        #[cfg(unix)]
        self.shared.waker.wake();
        self.join_threads();
        checkpoint_now(&self.shared);
        if let Some(mut persist) = self.shared.persist() {
            let _ = persist.sync();
        }
        self.shared.pool.clear();
    }

    fn join_threads(&mut self) {
        if let Some(core) = self.core.take() {
            let _ = core.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
        if let Some(persist) = self.persist.take() {
            let _ = persist.join();
        }
    }
}

/// The readiness-driven connection core (unix).
///
/// One thread owns the listener and every accepted connection. Each
/// connection is a small state machine fed whole frames by a
/// [`FrameDecoder`](wire::FrameDecoder); output is buffered per
/// connection and flushed as the socket accepts it, with `POLLOUT`
/// interest only while a buffer is nonempty. The loop never blocks on
/// any single connection, and it never sleeps to poll a condition —
/// every wait is a `poll(2)` with a deadline.
#[cfg(unix)]
mod event {
    use super::*;
    use bytes::BytesMut;
    use optrep_core::wire::{self, FrameDecoder};
    use optrep_net::reactor::{capped_poll_backoff, poll_ready_metered, Interest};
    use std::collections::HashMap;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::sync::mpsc;
    use std::time::Instant;

    /// Poll deadline when nothing else bounds it, so the loop re-checks
    /// the shutdown flag even if no fd ever fires (belt to the waker's
    /// suspenders).
    const IDLE_POLL: Duration = Duration::from_millis(500);

    /// Read buffer per wakeup; matches `TcpLink`'s.
    const READ_BUF: usize = 8 * 1024;

    /// Where one connection is in its life.
    enum ConnState {
        /// Waiting for the opening handshake frame.
        Handshake,
        /// A verb session; each request frame yields one response frame.
        Verbs,
        /// Serving anti-entropy contacts as the pulled-from side.
        /// `server` is `None` between contacts on a persistent
        /// connection; a fresh store snapshot is taken at the first
        /// frame of each contact.
        Serve {
            server: Option<BatchPullServer>,
            persistent: bool,
        },
        /// Done; close once the write buffer drains.
        Closing,
    }

    struct Conn {
        stream: TcpStream,
        decoder: FrameDecoder,
        out: BytesMut,
        state: ConnState,
        /// A blocking verb is on the executor: frames already received
        /// stay queued in the decoder and the socket is dropped from
        /// read interest (TCP backpressure does the rest) until the
        /// response comes back.
        busy: bool,
        dead: bool,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Conn {
            Conn {
                stream,
                decoder: FrameDecoder::new(),
                out: BytesMut::new(),
                state: ConnState::Handshake,
                busy: false,
                dead: false,
            }
        }

        fn done(&self) -> bool {
            self.dead || (matches!(self.state, ConnState::Closing) && self.out.is_empty())
        }
    }

    /// A verb handed off the event thread (only `sync` qualifies — it
    /// blocks on a network pull).
    struct Job {
        conn: u64,
        stream: u64,
        request: Request,
    }

    /// The lazily started single worker for blocking verbs. One worker
    /// is enough: concurrent `sync` verbs would race each other's
    /// generation checks anyway, and the thread count stays fixed.
    struct Executor {
        tx: mpsc::Sender<Job>,
    }

    fn spawn_executor(shared: &Arc<Shared>) -> Executor {
        let (tx, rx) = mpsc::channel::<Job>();
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            obs::with_all(shared.sinks.clone(), || {
                while let Ok(job) = rx.recv() {
                    shared.metrics.worker_queue_depth.dec();
                    let response = handle_request(&shared, job.request);
                    shared.completions().push(VerbDone {
                        conn: job.conn,
                        stream: job.stream,
                        response,
                    });
                    shared.waker.wake();
                }
            });
        });
        Executor { tx }
    }

    pub(super) fn event_loop(shared: &Arc<Shared>, listener: &TcpListener) {
        obs::with_all(shared.sinks.clone(), || run(shared, listener));
    }

    fn run(shared: &Arc<Shared>, listener: &TcpListener) {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut exec: Option<Executor> = None;
        let mut accept_errors: u32 = 0;
        let mut accept_retry_at: Option<Instant> = None;

        loop {
            if shared.stopping() {
                return;
            }

            // Deliver finished executor verbs, then resume parsing any
            // frames the connection queued while it was busy.
            let done: Vec<VerbDone> = std::mem::take(&mut *shared.completions());
            for verb in done {
                if let Some(conn) = conns.get_mut(&verb.conn) {
                    conn.busy = false;
                    push_response(conn, verb.stream, &verb.response);
                    process(shared, verb.conn, conn, &mut exec);
                    flush(shared, conn);
                }
            }
            conns.retain(|_, conn| !conn.done());

            // Assemble the poll set: waker, listener (unless accept
            // errors have it in backoff), then every connection.
            let now = Instant::now();
            if accept_retry_at.is_some_and(|at| now >= at) {
                accept_retry_at = None;
            }
            let mut fds = Vec::with_capacity(conns.len() + 2);
            fds.push((shared.waker.fd(), Interest::READ));
            let listener_slot = if accept_retry_at.is_none() {
                fds.push((listener.as_raw_fd(), Interest::READ));
                Some(fds.len() - 1)
            } else {
                None
            };
            let base = fds.len();
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in &ids {
                let conn = &conns[id];
                fds.push((
                    conn.stream.as_raw_fd(),
                    Interest {
                        readable: !conn.busy,
                        writable: !conn.out.is_empty(),
                    },
                ));
            }
            let timeout = match accept_retry_at {
                Some(at) => at.saturating_duration_since(now).min(IDLE_POLL),
                None => IDLE_POLL,
            };
            let Ok((_, ready)) = poll_ready_metered(&fds, Some(timeout), &shared.metrics.reactor)
            else {
                // poll(2) itself failed (fd exhaustion). Breathe and
                // retry; connections are still intact.
                std::thread::sleep(ACCEPT_BACKOFF_BASE);
                continue;
            };
            if shared.stopping() {
                return;
            }
            if ready[0].readable {
                shared.waker.drain();
            }
            if listener_slot.is_some_and(|slot| ready[slot].readable) {
                accept_all(
                    listener,
                    &mut conns,
                    &mut next_id,
                    &mut accept_errors,
                    &mut accept_retry_at,
                );
            }
            for (slot, id) in ids.iter().enumerate() {
                let readiness = ready[base + slot];
                let Some(conn) = conns.get_mut(id) else {
                    continue;
                };
                if readiness.readable {
                    let open = read_into(conn);
                    process(shared, *id, conn, &mut exec);
                    if !open {
                        flush(shared, conn);
                        conn.dead = true;
                    }
                } else if readiness.error {
                    conn.dead = true;
                }
                if !conn.dead && !conn.out.is_empty() {
                    flush(shared, conn);
                }
            }
            conns.retain(|_, conn| !conn.done());
        }
    }

    /// Drains the accept queue. A transient accept error (aborted
    /// handshake, fd pressure) puts the listener into capped
    /// exponential backoff — it leaves the poll set until the deadline
    /// — instead of the loop spinning on a hot error.
    fn accept_all(
        listener: &TcpListener,
        conns: &mut HashMap<u64, Conn>,
        next_id: &mut u64,
        accept_errors: &mut u32,
        accept_retry_at: &mut Option<Instant>,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    *accept_errors = 0;
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    *next_id += 1;
                    conns.insert(*next_id, Conn::new(stream));
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    let backoff = capped_poll_backoff(
                        *accept_errors,
                        ACCEPT_BACKOFF_BASE,
                        ACCEPT_BACKOFF_CAP,
                    );
                    *accept_errors = accept_errors.saturating_add(1);
                    *accept_retry_at = Some(Instant::now() + backoff);
                    return;
                }
            }
        }
    }

    /// Reads until the socket would block, feeding the frame decoder.
    /// Returns `false` on EOF or a socket error — frames already
    /// decoded are still processed, then the connection dies.
    fn read_into(conn: &mut Conn) -> bool {
        let mut buf = [0u8; READ_BUF];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => conn.decoder.push(&buf[..n]),
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Runs decoded frames through the connection's state machine until
    /// the decoder runs dry or the connection blocks (busy verb, done,
    /// dead).
    fn process(shared: &Arc<Shared>, id: u64, conn: &mut Conn, exec: &mut Option<Executor>) {
        while !conn.busy && !conn.dead && !matches!(conn.state, ConnState::Closing) {
            let frame = match conn.decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            };
            on_frame(shared, id, conn, frame, exec);
        }
    }

    /// Advances one connection state machine by one frame.
    fn on_frame(
        shared: &Arc<Shared>,
        id: u64,
        conn: &mut Conn,
        frame: wire::Frame,
        exec: &mut Option<Executor>,
    ) {
        match &mut conn.state {
            ConnState::Handshake => {
                if frame.stream != CONTROL_STREAM {
                    conn.dead = true;
                    return;
                }
                let mut payload = frame.payload;
                match Handshake::decode(&mut payload) {
                    Ok(handshake) => {
                        conn.state = match handshake.intent {
                            Intent::Verbs => ConnState::Verbs,
                            Intent::Pull => ConnState::Serve {
                                server: Some(shared.store().server_endpoint()),
                                persistent: false,
                            },
                            Intent::Peer => ConnState::Serve {
                                server: None,
                                persistent: true,
                            },
                        };
                    }
                    Err(_) => conn.dead = true,
                }
            }
            ConnState::Verbs => {
                let stream = frame.stream;
                let mut payload = frame.payload;
                match Request::decode(&mut payload) {
                    // `sync` blocks on a network pull; it runs on the
                    // executor so the event loop keeps turning.
                    Ok(request @ Request::Sync { .. }) => {
                        conn.busy = true;
                        let exec = exec.get_or_insert_with(|| spawn_executor(shared));
                        if exec
                            .tx
                            .send(Job {
                                conn: id,
                                stream,
                                request,
                            })
                            .is_err()
                        {
                            conn.dead = true;
                        } else {
                            shared.metrics.worker_queue_depth.inc();
                        }
                    }
                    Ok(request) => {
                        let response = handle_request(shared, request);
                        push_response(conn, stream, &response);
                    }
                    Err(e) => {
                        push_response(conn, stream, &Response::Err(format!("bad request: {e}")));
                    }
                }
            }
            ConnState::Serve { server, persistent } => {
                let endpoint = server.get_or_insert_with(|| shared.store().server_endpoint());
                match serve_frame(endpoint, frame, &mut conn.out) {
                    Ok(ServeStep::Continue) => {}
                    Ok(ServeStep::Done) => {
                        if *persistent {
                            *server = None;
                        } else {
                            conn.state = ConnState::Closing;
                        }
                    }
                    Err(_) => conn.dead = true,
                }
            }
            ConnState::Closing => {}
        }
    }

    /// Encodes one response frame onto the connection's write buffer.
    fn push_response(conn: &mut Conn, stream: u64, response: &Response) {
        let payload = response.encode();
        wire::put_frame(&mut conn.out, stream, &payload);
    }

    /// Writes as much of the buffered output as the socket accepts now;
    /// the remainder keeps `POLLOUT` interest for the next round. Each
    /// time the socket pushes back, the bytes left behind are one
    /// sample in the write-backlog histogram.
    fn flush(shared: &Shared, conn: &mut Conn) {
        while !conn.out.is_empty() {
            match conn.stream.write(&conn.out) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => {
                    let _ = conn.out.split_to(n);
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    shared
                        .metrics
                        .write_backlog_bytes
                        .record(conn.out.len() as u64);
                    return;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }
}

/// Thread-per-connection fallback for non-unix targets: same wire
/// behavior (including persistent `Peer` connections and capped accept
/// backoff), one handler thread per accepted socket.
#[cfg(not(unix))]
mod threaded {
    use super::*;
    use bytes::BytesMut;
    use optrep_net::TcpLink;
    use std::net::TcpStream;

    pub(super) fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
        let mut accept_errors: u32 = 0;
        loop {
            if shared.stopping() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    accept_errors = 0;
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || {
                        obs::with_all(shared.sinks.clone(), || handle_connection(&shared, stream));
                    });
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                // Transient accept errors (aborted handshake, fd
                // pressure): back off exponentially up to the cap so a
                // persistent condition doesn't spin the loop.
                Err(_) => {
                    let factor = 1u32 << accept_errors.min(16);
                    accept_errors = accept_errors.saturating_add(1);
                    std::thread::sleep(
                        ACCEPT_BACKOFF_BASE
                            .saturating_mul(factor)
                            .min(ACCEPT_BACKOFF_CAP),
                    );
                }
            }
        }
    }

    /// Reads the handshake and dispatches one connection. All errors
    /// are terminal for the connection only: the peer sees a FIN or
    /// reset and takes its own abort path.
    fn handle_connection(shared: &Shared, stream: TcpStream) {
        let Ok(mut link) = TcpLink::from_stream(stream, &shared.connect) else {
            return;
        };
        let Ok(frame) = link.recv_frame() else {
            return;
        };
        if frame.stream != CONTROL_STREAM {
            return;
        }
        let mut payload = frame.payload;
        let Ok(handshake) = Handshake::decode(&mut payload) else {
            return;
        };
        match handshake.intent {
            Intent::Pull => serve_pull(shared, &mut link),
            Intent::Peer => serve_peer(shared, &mut link),
            Intent::Verbs => serve_verbs(shared, &mut link),
        }
    }

    /// Serves one anti-entropy pull: snapshot the serving endpoint
    /// under the lock, then run the whole exchange without it.
    fn serve_pull(shared: &Shared, link: &mut TcpLink) {
        let mut server = Some(shared.store().server_endpoint());
        let mut out = BytesMut::new();
        let _ = serve_frames(shared, link, &mut server, &mut out, true);
    }

    /// Serves pipelined contacts on a persistent peer connection: a
    /// fresh store snapshot per contact, the socket kept open between
    /// them. An idle read timeout between contacts is not an error.
    fn serve_peer(shared: &Shared, link: &mut TcpLink) {
        let mut server: Option<BatchPullServer> = None;
        let mut out = BytesMut::new();
        loop {
            match serve_frames(shared, link, &mut server, &mut out, false) {
                Ok(()) if !shared.stopping() => continue,
                _ => return,
            }
        }
    }

    /// Pumps frames through [`serve_frame`] until one contact
    /// completes. `server = None` means between contacts; the snapshot
    /// is taken at the first frame.
    fn serve_frames(
        shared: &Shared,
        link: &mut TcpLink,
        server: &mut Option<BatchPullServer>,
        out: &mut BytesMut,
        fin_on_done: bool,
    ) -> Result<()> {
        loop {
            let frame = match link.recv_frame() {
                Ok(frame) => frame,
                // Idle between contacts: the read deadline is just the
                // shutdown poll. Mid-contact it is a real stall.
                Err(Error::Incomplete { .. }) if server.is_none() && !shared.stopping() => {
                    continue;
                }
                Err(e) => return Err(e),
            };
            let endpoint = server.get_or_insert_with(|| shared.store().server_endpoint());
            out.clear();
            let step = serve_frame(endpoint, frame, out).inspect_err(|_| link.fin())?;
            if !out.is_empty() {
                link.send_bytes(out)?;
            }
            if matches!(step, ServeStep::Done) {
                *server = None;
                if fin_on_done {
                    link.fin();
                }
                return Ok(());
            }
        }
    }

    /// Serves one verb session: one request frame in, one response
    /// frame out, until the client disconnects.
    fn serve_verbs(shared: &Shared, link: &mut TcpLink) {
        loop {
            let frame = match link.recv_frame() {
                Ok(frame) => frame,
                // A read deadline on an idle session is not an error;
                // it is the shutdown poll.
                Err(Error::Incomplete { .. }) if !shared.stopping() => continue,
                Err(_) => return,
            };
            let mut payload = frame.payload;
            let response = match Request::decode(&mut payload) {
                Ok(request) => handle_request(shared, request),
                Err(e) => Response::Err(format!("bad request: {e}")),
            };
            if link.send_frame(frame.stream, &response.encode()).is_err() {
                return;
            }
        }
    }
}

/// Refreshes the point-in-time gauges a scrape reports: store shape,
/// pool liveness, uptime. Counters and histograms are always current;
/// only gauges are sampled lazily, at snapshot time.
fn refresh_gauges(shared: &Shared) {
    let (keys, tracked, generation) = {
        let store = shared.store();
        (
            store.len() as u64,
            store.tracked_entries() as u64,
            store.generation(),
        )
    };
    let m = &shared.metrics;
    m.store_keys.set(keys);
    m.store_tracked.set(tracked);
    m.store_generation.set(generation);
    m.conn_live.set(shared.pool.live() as u64);
    m.uptime_secs.set(shared.started.elapsed().as_secs());
    if let Some(persist) = shared.persist() {
        m.wal_size_bytes.set(persist.wal_len());
        m.checkpoint_seq.set(persist.snapshot_seq());
    }
}

/// Executes one client verb against the shared store, timing it into
/// `optrep_verb_service_micros`.
fn handle_request(shared: &Shared, request: Request) -> Response {
    let started = Instant::now();
    let response = dispatch_request(shared, request);
    shared
        .metrics
        .verb_service_micros
        .record(started.elapsed().as_micros() as u64);
    response
}

fn dispatch_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Get { key } => {
            let store = shared.store();
            Response::Value(store.get(&key).map(bytes::Bytes::copy_from_slice))
        }
        Request::Put { key, value } => {
            // The guard spans mutate + WAL append: log order is commit
            // order, and the ack only goes out once the record is down.
            let mut store = shared.store();
            store.put(key.clone(), value);
            match shared.wal_append(&store, std::slice::from_ref(&key)) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(format!("{e}")),
            }
        }
        Request::Delete { key } => {
            let mut store = shared.store();
            store.delete(key.clone());
            match shared.wal_append(&store, std::slice::from_ref(&key)) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(format!("{e}")),
            }
        }
        Request::Status => {
            let (keys, tracked, generation) = {
                let store = shared.store();
                (
                    store.len() as u64,
                    store.tracked_entries() as u64,
                    store.generation(),
                )
            };
            let totals = shared.pool.totals();
            let (wal_records, wal_bytes, wal_fsyncs, wal_checkpoint_seq) = match shared.persist() {
                Some(persist) => (
                    persist.records(),
                    persist.appended_bytes(),
                    persist.fsyncs(),
                    persist.snapshot_seq(),
                ),
                None => (0, 0, 0, 0),
            };
            Response::Status(StatusInfo {
                site: shared.site.index(),
                keys,
                tracked,
                generation,
                conn_dials: totals.dials,
                conn_contacts: totals.contacts,
                conn_live: shared.pool.live() as u64,
                uptime_secs: shared.started.elapsed().as_secs(),
                metrics_seq: shared.registry.seq(),
                wal_records,
                wal_bytes,
                wal_fsyncs,
                wal_checkpoint_seq,
            })
        }
        Request::Digest => Response::Digest(shared.store().replica_digest()),
        Request::Sync { peer } => match peer.parse::<SocketAddr>() {
            Ok(addr) => match pull_from(shared, addr) {
                Ok(report) => Response::Synced(report),
                Err(e) => Response::Err(format!("sync failed: {e}")),
            },
            Err(_) => Response::Err(format!("bad peer address: {peer}")),
        },
        Request::Metrics => {
            refresh_gauges(shared);
            Response::Metrics(shared.registry.snapshot())
        }
    }
}

/// One generation-checked pull from `peer`, over the pooled persistent
/// connection to it.
///
/// The pool hands back the peer's long-lived socket (dialing and
/// handshaking only if there is none yet); the contact runs pipelined —
/// no FIN, the connection stays checked in for the next pull. The
/// client endpoint is snapshotted *inside* the pooled closure so a
/// stale-connection rerun gets fresh metadata. Before committing, the
/// store's write generation is compared with the snapshot's: if a local
/// write (or another pull) landed in between, the staged outcomes
/// describe a store that no longer exists, so the pull is retried
/// against fresh metadata instead of committed — bounded by
/// [`APPLY_RACE_RETRIES`].
fn pull_from(shared: &Shared, peer: SocketAddr) -> Result<KvSyncReport> {
    for _ in 0..APPLY_RACE_RETRIES {
        let (generation, client, report) = shared.pool.with_conn(peer, |link| {
            let (generation, mut client) = {
                let store = shared.store();
                (store.generation(), store.client_endpoint())
            };
            let report = run_contact_pipelined(&mut client, link)?;
            Ok((generation, client, report))
        })?;
        // Commit: generation re-check, transactional apply, and WAL
        // append all under ONE store guard. A local write that raced
        // the network exchange forces a retry; once the check passes,
        // nothing can land between it and the commit, and the log
        // record (the whole contact as one record) freezes inside the
        // same critical section the commit does.
        let mut store = shared.store();
        if store.generation() != generation {
            continue;
        }
        let (synced, changed) = store.apply_contact_tracked(&shared.resolver, client, &report)?;
        shared.wal_append(&store, &changed)?;
        return Ok(synced);
    }
    // Local writes outran every attempt; the next gossip tick will
    // carry them anyway.
    Err(Error::Incomplete {
        protocol: "daemon pull",
    })
}

/// The durability tick: a backstop fsync for the `interval` policy
/// (appends only sync opportunistically — a quiet log would otherwise
/// sit dirty forever) and periodic checkpoints, taken on schedule or
/// early once the WAL outgrows the configured size.
fn persist_loop(shared: &Arc<Shared>) {
    const TICK: Duration = Duration::from_millis(25);
    let Some(config) = shared.durability.clone() else {
        return;
    };
    let mut last_checkpoint = Instant::now();
    while !shared.stopping() {
        sleep_watching(shared, TICK);
        if shared.stopping() {
            return;
        }
        let (sync_due, checkpoint_due) = match shared.persist() {
            Some(persist) => (
                persist.fsync_due(),
                persist.needs_checkpoint()
                    && (last_checkpoint.elapsed() >= config.checkpoint_interval
                        || persist.wal_len() >= config.checkpoint_wal_bytes),
            ),
            None => return,
        };
        if sync_due {
            if let Some(mut persist) = shared.persist() {
                if let Ok(true) = persist.sync() {
                    shared.metrics.wal_fsyncs_total.inc();
                }
            }
        }
        if checkpoint_due {
            checkpoint_now(shared);
            last_checkpoint = Instant::now();
        }
    }
}

/// Writes a checkpoint right now (if the WAL holds anything the
/// snapshot doesn't). The store lock freezes appends while the
/// snapshot is encoded *and* while the persist lock is acquired —
/// every appender holds store across its append, so once both guards
/// are held the image and `Persist::seq` describe the same instant;
/// the store guard is then released and the slow file work (two atomic
/// swaps) proceeds under the persist guard alone, appends queueing
/// behind it rather than landing in the log being truncated.
fn checkpoint_now(shared: &Shared) -> bool {
    if shared.persist.is_none() {
        return false;
    }
    let started = Instant::now();
    let store = shared.store();
    let image = store.encode_snapshot();
    let Some(mut persist) = shared.persist() else {
        return false;
    };
    drop(store);
    if !persist.needs_checkpoint() {
        return false;
    }
    match persist.checkpoint(&image) {
        Ok(()) => {
            let m = &shared.metrics;
            m.checkpoints_total.inc();
            m.checkpoint_micros
                .record(started.elapsed().as_micros() as u64);
            true
        }
        // Checkpointing is an optimization; the old snapshot + full
        // log still recover. The next tick retries.
        Err(_) => false,
    }
}

/// Pulls from each configured peer in turn, one pass per `interval`,
/// retrying per [`RetryPolicy`] with capped exponential backoff (the
/// policy's round counts scaled to the socket backoff schedule).
fn gossip_loop(shared: &Arc<Shared>, interval: Duration) {
    while !shared.stopping() {
        sleep_watching(shared, interval);
        if shared.stopping() {
            return;
        }
        let mut quarantined: u64 = 0;
        for &peer in &shared.peers {
            let attempts = shared.retry.max_attempts.max(1);
            let mut reached = false;
            for attempt in 0..attempts {
                if shared.stopping() {
                    return;
                }
                if attempt > 0 {
                    let factor = 1u32 << (attempt - 1).min(16);
                    std::thread::sleep(
                        shared
                            .connect
                            .backoff_base
                            .saturating_mul(factor)
                            .min(shared.connect.backoff_cap),
                    );
                }
                if pull_from(shared, peer).is_ok() {
                    reached = true;
                    break;
                }
            }
            if !reached {
                quarantined += 1;
            }
        }
        // Peers that burned the whole retry budget this pass sit out
        // until the next tick — the fleet-view "quarantine" column.
        shared.metrics.quarantined_peers.set(quarantined);
    }
}

/// Sleeps `total` in slices, returning early on shutdown.
fn sleep_watching(shared: &Shared, total: Duration) {
    let slice = total.min(ACCEPT_POLL.max(Duration::from_millis(1)));
    let mut slept = Duration::ZERO;
    while slept < total && !shared.stopping() {
        let step = slice.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}
