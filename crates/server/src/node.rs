//! The `optrepd` node: accept loop, verb service, pull service, gossip.
//!
//! A [`Node`] owns one [`KvStore`] behind a mutex and serves it over
//! real sockets. Every connection opens with a
//! [`Handshake`](wire::Handshake) frame; its
//! [`Intent`](wire::Intent) selects the service:
//!
//! * **Verbs** — a request/response loop speaking [`proto`](crate::proto)
//!   on the control stream (`get`/`put`/`delete`/`status`/`digest`/`sync`).
//! * **Pull** — the connector drives a batched anti-entropy contact as
//!   the pulling side; this node snapshots a
//!   [`server_endpoint`](KvStore::server_endpoint) and serves it through
//!   [`serve_contact_link`], never holding the store lock during network
//!   I/O.
//!
//! Outbound pulls ([`Node::sync_with`], and the periodic gossip thread)
//! run the generation-checked discipline `KvStore::generation` was built
//! for: snapshot the client endpoint under the lock, release it for the
//! whole network exchange, re-lock and commit only if no local write
//! raced the pull — otherwise retry against fresh metadata. A connection
//! that dies mid-contact therefore aborts before anything is staged,
//! leaving the store byte-identical.

use crate::proto::{Request, Response};
use optrep_core::obs::{self, Sink};
use optrep_core::wire::{Handshake, Intent};
use optrep_core::{Error, Result, SiteId};
use optrep_kv::{JoinResolver, KvStore, KvSyncReport};
use optrep_net::{ConnectOptions, TcpLink};
use optrep_replication::{run_contact_link, serve_contact_link, RetryPolicy, CONTROL_STREAM};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// How often the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How many times an outbound pull retries after racing a local write
/// (the exchange itself succeeded; only the commit was stale).
const APPLY_RACE_RETRIES: u32 = 3;

/// Configuration for one [`Node`].
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This replica's site id.
    pub site: SiteId,
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Node::addr`]).
    pub listen: SocketAddr,
    /// Peers the gossip thread pulls from, round-robin.
    pub peers: Vec<SocketAddr>,
    /// Gossip period; `None` disables the gossip thread (pulls then
    /// happen only via `optrep sync` / [`Node::sync_with`]).
    pub gossip_interval: Option<Duration>,
    /// Retry budget for outbound pulls (attempts per peer per gossip
    /// tick; the same policy shape the in-process engine uses).
    pub retry: RetryPolicy,
    /// Socket dial/deadline policy for every connection this node opens
    /// or accepts.
    pub connect: ConnectOptions,
}

impl NodeConfig {
    /// A node for `site` listening on `listen`, no peers, no gossip,
    /// default retry and socket policies.
    pub fn new(site: SiteId, listen: SocketAddr) -> Self {
        NodeConfig {
            site,
            listen,
            peers: Vec::new(),
            gossip_interval: None,
            retry: RetryPolicy::default(),
            connect: ConnectOptions::default(),
        }
    }

    /// Adds gossip peers.
    #[must_use]
    pub fn with_peers(mut self, peers: impl IntoIterator<Item = SocketAddr>) -> Self {
        self.peers.extend(peers);
        self
    }

    /// Enables the periodic gossip thread.
    #[must_use]
    pub fn with_gossip(mut self, interval: Duration) -> Self {
        self.gossip_interval = Some(interval);
        self
    }

    /// Sets the outbound pull retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the socket dial/deadline policy.
    #[must_use]
    pub fn with_connect(mut self, connect: ConnectOptions) -> Self {
        self.connect = connect;
        self
    }
}

/// State shared between the accept loop, connection handlers, the
/// gossip thread, and the owning [`Node`] handle.
struct Shared {
    site: SiteId,
    store: Mutex<KvStore>,
    resolver: JoinResolver,
    peers: Vec<SocketAddr>,
    retry: RetryPolicy,
    connect: ConnectOptions,
    shutdown: AtomicBool,
    /// Obs sinks captured at [`Node::start`]; re-installed on every
    /// spawned thread (shared `Arc`s, as the engine's wave workers do)
    /// so socket-driven contacts trace into the starter's aggregators.
    sinks: Vec<Arc<dyn Sink>>,
}

impl Shared {
    /// Locks the store, recovering from a poisoned lock: the store's
    /// transactional apply discipline never leaves it half-written, so
    /// a handler that panicked elsewhere must not wedge the daemon.
    fn store(&self) -> MutexGuard<'_, KvStore> {
        match self.store.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// A running `optrepd` node.
///
/// Dropping the handle does **not** stop the daemon; call
/// [`Node::stop`] (or let the process exit).
pub struct Node {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    gossip: Option<std::thread::JoinHandle<()>>,
}

impl Node {
    /// Binds the listener and starts the accept loop (and the gossip
    /// thread, if configured). Returns once the node is reachable.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedMessage`] if the listen address cannot be
    /// bound — an environment problem, not link weather.
    pub fn start(config: NodeConfig) -> Result<Node> {
        let listener = TcpListener::bind(config.listen).map_err(|e| Error::UnexpectedMessage {
            protocol: "daemon",
            message: format!("cannot bind {}: {e}", config.listen),
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::UnexpectedMessage {
                protocol: "daemon",
                message: format!("listener has no address: {e}"),
            })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::UnexpectedMessage {
                protocol: "daemon",
                message: format!("cannot poll listener: {e}"),
            })?;
        let shared = Arc::new(Shared {
            site: config.site,
            store: Mutex::new(KvStore::new(config.site)),
            resolver: JoinResolver,
            peers: config.peers,
            retry: config.retry,
            connect: config.connect,
            shutdown: AtomicBool::new(false),
            sinks: obs::installed(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let gossip = config.gossip_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || gossip_loop(&shared, interval))
        });
        Ok(Node {
            shared,
            addr,
            accept: Some(accept),
            gossip,
        })
    }

    /// The bound listen address (the actual port when configured with 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's site id.
    pub fn site(&self) -> SiteId {
        self.shared.site
    }

    /// Runs `f` with the store locked — the in-process equivalent of a
    /// verb session, for embedding and tests.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut KvStore) -> R) -> R {
        f(&mut self.shared.store())
    }

    /// The site-independent replica digest (`optrep digest`).
    pub fn digest(&self) -> u64 {
        self.shared.store().replica_digest()
    }

    /// Pulls from `peer` right now, exactly as the `sync` verb does.
    ///
    /// # Errors
    ///
    /// Propagates dial, transport, and protocol errors; the store is
    /// untouched unless the pull committed.
    pub fn sync_with(&self, peer: SocketAddr) -> Result<KvSyncReport> {
        pull_from(&self.shared, peer)
    }

    /// Blocks until the node is stopped.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
    }

    /// Stops the accept and gossip threads and waits for them.
    ///
    /// In-flight connection handlers are not joined: they observe the
    /// shutdown flag at their next read deadline and exit on their own.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
    }
}

/// Accepts connections until shutdown, one handler thread each.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    obs::with_all(shared.sinks.clone(), || handle_connection(&shared, stream));
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (aborted handshake, fd pressure):
            // keep serving; a broken listener shows up as a spin here,
            // not a crash.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads the handshake and dispatches one connection. All errors are
/// terminal for the connection only: the peer sees a FIN or reset and
/// takes its own abort path.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Ok(mut link) = TcpLink::from_stream(stream, &shared.connect) else {
        return;
    };
    let Ok(frame) = link.recv_frame() else {
        return;
    };
    if frame.stream != CONTROL_STREAM {
        return;
    }
    let mut payload = frame.payload;
    let Ok(handshake) = Handshake::decode(&mut payload) else {
        return;
    };
    match handshake.intent {
        Intent::Pull => serve_pull(shared, &mut link),
        Intent::Verbs => serve_verbs(shared, &mut link),
    }
}

/// Serves one anti-entropy pull: snapshot the serving endpoint under
/// the lock, then run the whole exchange without it. A pull never
/// modifies the serving store, so concurrent local writes simply miss
/// this contact and ride the next one.
fn serve_pull(shared: &Shared, link: &mut TcpLink) {
    let mut server = shared.store().server_endpoint();
    let _ = serve_contact_link(&mut server, link);
}

/// Serves one verb session: one request frame in, one response frame
/// out, until the client disconnects.
fn serve_verbs(shared: &Shared, link: &mut TcpLink) {
    loop {
        let frame = match link.recv_frame() {
            Ok(frame) => frame,
            // A read deadline on an idle session is not an error; it is
            // the shutdown poll.
            Err(Error::Incomplete { .. }) if !shared.stopping() => continue,
            Err(_) => return,
        };
        let mut payload = frame.payload;
        let response = match Request::decode(&mut payload) {
            Ok(request) => handle_request(shared, request),
            Err(e) => Response::Err(format!("bad request: {e}")),
        };
        if link.send_frame(frame.stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Executes one client verb against the shared store.
fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Get { key } => {
            let store = shared.store();
            Response::Value(store.get(&key).map(bytes::Bytes::copy_from_slice))
        }
        Request::Put { key, value } => {
            shared.store().put(key, value);
            Response::Ok
        }
        Request::Delete { key } => {
            shared.store().delete(key);
            Response::Ok
        }
        Request::Status => {
            let store = shared.store();
            Response::Status {
                site: shared.site.index(),
                keys: store.len() as u64,
                tracked: store.tracked_entries() as u64,
                generation: store.generation(),
            }
        }
        Request::Digest => Response::Digest(shared.store().replica_digest()),
        Request::Sync { peer } => match peer.parse::<SocketAddr>() {
            Ok(addr) => match pull_from(shared, addr) {
                Ok(report) => Response::Synced(report),
                Err(e) => Response::Err(format!("sync failed: {e}")),
            },
            Err(_) => Response::Err(format!("bad peer address: {peer}")),
        },
    }
}

/// One generation-checked pull from `peer`.
///
/// The client endpoint is a snapshot of this store's metadata; the
/// whole network exchange runs without the store lock. Before
/// committing, the store's write generation is compared with the
/// snapshot's: if a local write (or another pull) landed in between,
/// the staged outcomes describe a store that no longer exists, so the
/// pull is retried against fresh metadata instead of committed —
/// bounded by [`APPLY_RACE_RETRIES`].
fn pull_from(shared: &Shared, peer: SocketAddr) -> Result<KvSyncReport> {
    for _ in 0..APPLY_RACE_RETRIES {
        let (generation, mut client) = {
            let store = shared.store();
            (store.generation(), store.client_endpoint())
        };
        let mut link = TcpLink::connect(peer, &shared.connect)?;
        link.send_frame(
            CONTROL_STREAM,
            &Handshake::new(shared.site.index(), Intent::Pull).encode(),
        )?;
        let report = run_contact_link(&mut client, &mut link)?;
        let mut store = shared.store();
        if store.generation() != generation {
            continue;
        }
        return store.apply_contact(&shared.resolver, client, &report);
    }
    // Local writes outran every attempt; the next gossip tick will
    // carry them anyway.
    Err(Error::Incomplete {
        protocol: "daemon pull",
    })
}

/// Pulls from each configured peer in turn, one pass per `interval`,
/// retrying per [`RetryPolicy`] with capped exponential backoff (the
/// policy's round counts scaled to the socket backoff schedule).
fn gossip_loop(shared: &Arc<Shared>, interval: Duration) {
    while !shared.stopping() {
        sleep_watching(shared, interval);
        if shared.stopping() {
            return;
        }
        for &peer in &shared.peers {
            let attempts = shared.retry.max_attempts.max(1);
            for attempt in 0..attempts {
                if shared.stopping() {
                    return;
                }
                if attempt > 0 {
                    let factor = 1u32 << (attempt - 1).min(16);
                    std::thread::sleep(
                        shared
                            .connect
                            .backoff_base
                            .saturating_mul(factor)
                            .min(shared.connect.backoff_cap),
                    );
                }
                if pull_from(shared, peer).is_ok() {
                    break;
                }
            }
        }
    }
}

/// Sleeps `total` in slices, returning early on shutdown.
fn sleep_watching(shared: &Shared, total: Duration) {
    let slice = total.min(ACCEPT_POLL.max(Duration::from_millis(1)));
    let mut slept = Duration::ZERO;
    while slept < total && !shared.stopping() {
        let step = slice.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}
