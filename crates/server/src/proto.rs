//! The `optrep` client-verb protocol.
//!
//! After a [`Handshake`](optrep_core::wire::Handshake) with
//! [`Intent::Verbs`](optrep_core::wire::Intent), a connection carries a
//! simple request/response exchange on the control stream: each
//! [`Request`] travels as one frame payload and is answered by exactly
//! one [`Response`] frame. Encoding follows the repo's wire conventions
//! (one-byte tags, LEB128 varints, length-prefixed byte strings), so the
//! verb traffic is as measurable as the anti-entropy traffic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use optrep_core::error::WireError;
use optrep_core::wire;
use optrep_kv::KvSyncReport;

/// One client verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read a key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Write a key.
    Put {
        /// Key to write.
        key: String,
        /// New value bytes.
        value: Bytes,
    },
    /// Delete a key (writes a tombstone).
    Delete {
        /// Key to delete.
        key: String,
    },
    /// Ask the daemon for its vital signs.
    Status,
    /// Ask for the site-independent replica digest.
    Digest,
    /// Ask the daemon to pull from `peer` (`host:port`) right now.
    Sync {
        /// Peer address to pull from.
        peer: String,
    },
}

/// The daemon's vital signs, answered to a `Status` verb.
///
/// Beyond store shape, it carries the daemon's outbound peer-connection
/// counters so operators (and `smoke_cluster.sh`) can verify that
/// repeated pulls to the same peer pipeline over one persistent
/// connection: `conn_dials` stays put while `conn_contacts` grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// The daemon's site id.
    pub site: u32,
    /// Live (non-tombstoned) keys.
    pub keys: u64,
    /// Tracked entries including tombstones.
    pub tracked: u64,
    /// The store's write generation.
    pub generation: u64,
    /// Outbound peer sockets ever dialed (sum over peers).
    pub conn_dials: u64,
    /// Contacts completed over pooled peer connections (sum over peers).
    pub conn_contacts: u64,
    /// Peers with a live pooled connection right now.
    pub conn_live: u64,
}

/// The daemon's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Get` result; `None` for absent or tombstoned keys.
    Value(Option<Bytes>),
    /// `Put`/`Delete` acknowledged.
    Ok,
    /// `Status` result.
    Status(StatusInfo),
    /// `Digest` result ([`optrep_kv::KvStore::replica_digest`]).
    Digest(u64),
    /// `Sync` completed with this pull report.
    Synced(KvSyncReport),
    /// The verb failed; human-readable reason.
    Err(String),
}

const REQ_GET: u8 = 1;
const REQ_PUT: u8 = 2;
const REQ_DELETE: u8 = 3;
const REQ_STATUS: u8 = 4;
const REQ_DIGEST: u8 = 5;
const REQ_SYNC: u8 = 6;

const RESP_VALUE: u8 = 1;
const RESP_OK: u8 = 2;
const RESP_STATUS: u8 = 3;
const RESP_DIGEST: u8 = 4;
const RESP_SYNCED: u8 = 5;
const RESP_ERR: u8 = 6;

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    let bytes = wire::get_bytes(buf)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidPayload)
}

impl Request {
    /// Encodes the request as one frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Request::Get { key } => {
                buf.put_u8(REQ_GET);
                wire::put_bytes(&mut buf, key.as_bytes());
            }
            Request::Put { key, value } => {
                buf.put_u8(REQ_PUT);
                wire::put_bytes(&mut buf, key.as_bytes());
                wire::put_bytes(&mut buf, value);
            }
            Request::Delete { key } => {
                buf.put_u8(REQ_DELETE);
                wire::put_bytes(&mut buf, key.as_bytes());
            }
            Request::Status => buf.put_u8(REQ_STATUS),
            Request::Digest => buf.put_u8(REQ_DIGEST),
            Request::Sync { peer } => {
                buf.put_u8(REQ_SYNC);
                wire::put_bytes(&mut buf, peer.as_bytes());
            }
        }
        buf.freeze()
    }

    /// Decodes one request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownTag`] on an unrecognized verb,
    /// [`WireError::UnexpectedEof`]/[`WireError::InvalidPayload`] on
    /// truncated or malformed fields.
    pub fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let req = match buf.get_u8() {
            REQ_GET => Request::Get {
                key: get_string(buf)?,
            },
            REQ_PUT => Request::Put {
                key: get_string(buf)?,
                value: wire::get_bytes(buf)?,
            },
            REQ_DELETE => Request::Delete {
                key: get_string(buf)?,
            },
            REQ_STATUS => Request::Status,
            REQ_DIGEST => Request::Digest,
            REQ_SYNC => Request::Sync {
                peer: get_string(buf)?,
            },
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if buf.has_remaining() {
            return Err(WireError::InvalidPayload);
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Response::Value(value) => {
                buf.put_u8(RESP_VALUE);
                match value {
                    Some(v) => {
                        buf.put_u8(1);
                        wire::put_bytes(&mut buf, v);
                    }
                    None => buf.put_u8(0),
                }
            }
            Response::Ok => buf.put_u8(RESP_OK),
            Response::Status(info) => {
                buf.put_u8(RESP_STATUS);
                wire::put_varint(&mut buf, u64::from(info.site));
                wire::put_varint(&mut buf, info.keys);
                wire::put_varint(&mut buf, info.tracked);
                wire::put_varint(&mut buf, info.generation);
                wire::put_varint(&mut buf, info.conn_dials);
                wire::put_varint(&mut buf, info.conn_contacts);
                wire::put_varint(&mut buf, info.conn_live);
            }
            Response::Digest(digest) => {
                buf.put_u8(RESP_DIGEST);
                wire::put_varint(&mut buf, *digest);
            }
            Response::Synced(report) => {
                buf.put_u8(RESP_SYNCED);
                for n in [
                    report.keys_examined,
                    report.keys_created,
                    report.keys_fast_forwarded,
                    report.keys_reconciled,
                    report.keys_unchanged,
                    report.meta_bytes,
                    report.value_bytes,
                ] {
                    wire::put_varint(&mut buf, n as u64);
                }
            }
            Response::Err(msg) => {
                buf.put_u8(RESP_ERR);
                wire::put_bytes(&mut buf, msg.as_bytes());
            }
        }
        buf.freeze()
    }

    /// Decodes one response from a frame payload.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let resp = match buf.get_u8() {
            RESP_VALUE => {
                if !buf.has_remaining() {
                    return Err(WireError::UnexpectedEof);
                }
                let value = match buf.get_u8() {
                    0 => None,
                    1 => Some(wire::get_bytes(buf)?),
                    tag => return Err(WireError::UnknownTag(tag)),
                };
                Response::Value(value)
            }
            RESP_OK => Response::Ok,
            RESP_STATUS => {
                let site = wire::get_varint(buf)?;
                if site > u64::from(u32::MAX) {
                    return Err(WireError::InvalidPayload);
                }
                Response::Status(StatusInfo {
                    site: site as u32,
                    keys: wire::get_varint(buf)?,
                    tracked: wire::get_varint(buf)?,
                    generation: wire::get_varint(buf)?,
                    conn_dials: wire::get_varint(buf)?,
                    conn_contacts: wire::get_varint(buf)?,
                    conn_live: wire::get_varint(buf)?,
                })
            }
            RESP_DIGEST => Response::Digest(wire::get_varint(buf)?),
            RESP_SYNCED => {
                let mut fields = [0usize; 7];
                for field in &mut fields {
                    *field = wire::get_varint(buf)? as usize;
                }
                Response::Synced(KvSyncReport {
                    keys_examined: fields[0],
                    keys_created: fields[1],
                    keys_fast_forwarded: fields[2],
                    keys_reconciled: fields[3],
                    keys_unchanged: fields[4],
                    meta_bytes: fields[5],
                    value_bytes: fields[6],
                })
            }
            RESP_ERR => Response::Err(get_string(buf)?),
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if buf.has_remaining() {
            return Err(WireError::InvalidPayload);
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Get { key: "k".into() },
            Request::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
            Request::Delete { key: "gone".into() },
            Request::Status,
            Request::Digest,
            Request::Sync {
                peer: "127.0.0.1:7701".into(),
            },
        ];
        for req in reqs {
            let mut buf = req.encode();
            assert_eq!(Request::decode(&mut buf), Ok(req));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Value(None),
            Response::Value(Some(Bytes::from_static(b"hello"))),
            Response::Ok,
            Response::Status(StatusInfo {
                site: 3,
                keys: 10,
                tracked: 12,
                generation: 99,
                conn_dials: 1,
                conn_contacts: 41,
                conn_live: 1,
            }),
            Response::Digest(u64::MAX),
            Response::Synced(KvSyncReport {
                keys_examined: 5,
                keys_created: 1,
                keys_fast_forwarded: 2,
                keys_reconciled: 1,
                keys_unchanged: 1,
                meta_bytes: 120,
                value_bytes: 34,
            }),
            Response::Err("no such peer".into()),
        ];
        for resp in resps {
            let mut buf = resp.encode();
            assert_eq!(Response::decode(&mut buf), Ok(resp));
        }
    }

    #[test]
    fn truncations_and_junk_are_rejected() {
        let full = Request::Put {
            key: "key".into(),
            value: Bytes::from_static(b"value"),
        }
        .encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            assert!(Request::decode(&mut buf).is_err(), "cut {cut}");
        }
        let mut junk = Bytes::from_static(&[0x7f, 1, 2]);
        assert_eq!(Request::decode(&mut junk), Err(WireError::UnknownTag(0x7f)));
        // Trailing garbage after a valid verb is a protocol error.
        let mut padded = BytesMut::new();
        padded.put_slice(&Request::Status.encode());
        padded.put_u8(0);
        let mut buf = padded.freeze();
        assert_eq!(Request::decode(&mut buf), Err(WireError::InvalidPayload));
    }
}
