//! The `optrep` client-verb protocol.
//!
//! After a [`Handshake`](optrep_core::wire::Handshake) with
//! [`Intent::Verbs`](optrep_core::wire::Intent), a connection carries a
//! simple request/response exchange on the control stream: each
//! [`Request`] travels as one frame payload and is answered by exactly
//! one [`Response`] frame. Encoding follows the repo's wire conventions
//! (one-byte tags, LEB128 varints, length-prefixed byte strings), so the
//! verb traffic is as measurable as the anti-entropy traffic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use optrep_core::error::WireError;
use optrep_core::obs::metrics::{FamilySnapshot, FamilyValue, HistogramSnapshot, MetricsSnapshot};
use optrep_core::obs::BUCKETS;
use optrep_core::wire;
use optrep_kv::KvSyncReport;

/// One client verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read a key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Write a key.
    Put {
        /// Key to write.
        key: String,
        /// New value bytes.
        value: Bytes,
    },
    /// Delete a key (writes a tombstone).
    Delete {
        /// Key to delete.
        key: String,
    },
    /// Ask the daemon for its vital signs.
    Status,
    /// Ask for the site-independent replica digest.
    Digest,
    /// Ask the daemon to pull from `peer` (`host:port`) right now.
    Sync {
        /// Peer address to pull from.
        peer: String,
    },
    /// Ask for a self-describing metrics snapshot (all registered
    /// counter/gauge/histogram families).
    Metrics,
}

/// The daemon's vital signs, answered to a `Status` verb.
///
/// Beyond store shape, it carries the daemon's outbound peer-connection
/// counters so operators (and `smoke_cluster.sh`) can verify that
/// repeated pulls to the same peer pipeline over one persistent
/// connection: `conn_dials` stays put while `conn_contacts` grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// The daemon's site id.
    pub site: u32,
    /// Live (non-tombstoned) keys.
    pub keys: u64,
    /// Tracked entries including tombstones.
    pub tracked: u64,
    /// The store's write generation.
    pub generation: u64,
    /// Outbound peer sockets ever dialed (sum over peers).
    pub conn_dials: u64,
    /// Contacts completed over pooled peer connections (sum over peers).
    pub conn_contacts: u64,
    /// Peers with a live pooled connection right now.
    pub conn_live: u64,
    /// Seconds since the daemon started (0 from pre-metrics daemons).
    pub uptime_secs: u64,
    /// Metrics snapshots the daemon has served so far (0 from
    /// pre-metrics daemons — no registry, nothing ever scraped).
    pub metrics_seq: u64,
    /// WAL records appended since start (0 on a memory-only daemon —
    /// and likewise for the three fields below).
    pub wal_records: u64,
    /// WAL record bytes appended since start.
    pub wal_bytes: u64,
    /// WAL fsyncs issued since start.
    pub wal_fsyncs: u64,
    /// WAL sequence the last snapshot checkpoint covers.
    pub wal_checkpoint_seq: u64,
}

/// The daemon's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Get` result; `None` for absent or tombstoned keys.
    Value(Option<Bytes>),
    /// `Put`/`Delete` acknowledged.
    Ok,
    /// `Status` result.
    Status(StatusInfo),
    /// `Digest` result ([`optrep_kv::KvStore::replica_digest`]).
    Digest(u64),
    /// `Sync` completed with this pull report.
    Synced(KvSyncReport),
    /// `Metrics` result: every registered family, point in time.
    Metrics(MetricsSnapshot),
    /// The verb failed; human-readable reason.
    Err(String),
}

const REQ_GET: u8 = 1;
const REQ_PUT: u8 = 2;
const REQ_DELETE: u8 = 3;
const REQ_STATUS: u8 = 4;
const REQ_DIGEST: u8 = 5;
const REQ_SYNC: u8 = 6;
const REQ_METRICS: u8 = 7;

const RESP_VALUE: u8 = 1;
const RESP_OK: u8 = 2;
const RESP_STATUS: u8 = 3;
const RESP_DIGEST: u8 = 4;
const RESP_SYNCED: u8 = 5;
const RESP_ERR: u8 = 6;
const RESP_METRICS: u8 = 7;

/// Family kind tags inside a `Metrics` response.
const FAMILY_COUNTER: u8 = 0;
const FAMILY_GAUGE: u8 = 1;
const FAMILY_HISTOGRAM: u8 = 2;

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    let bytes = wire::get_bytes(buf)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidPayload)
}

/// Encodes one metric family: length-prefixed name, kind tag, value.
/// Histogram buckets travel sparse — `(index, count)` pairs with
/// strictly increasing one-byte indexes — so a mostly-empty 65-bucket
/// histogram costs a handful of bytes, and every field is counted up
/// front (no optional tails: a truncated snapshot can never decode).
fn put_family(buf: &mut BytesMut, family: &FamilySnapshot) {
    wire::put_bytes(buf, family.name.as_bytes());
    match &family.value {
        FamilyValue::Counter(v) => {
            buf.put_u8(FAMILY_COUNTER);
            wire::put_varint(buf, *v);
        }
        FamilyValue::Gauge(v) => {
            buf.put_u8(FAMILY_GAUGE);
            wire::put_varint(buf, *v);
        }
        FamilyValue::Histogram(h) => {
            buf.put_u8(FAMILY_HISTOGRAM);
            wire::put_varint(buf, h.sum);
            wire::put_varint(buf, h.count);
            let nonzero: Vec<(usize, u64)> = h
                .counts
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, c)| c != 0)
                .collect();
            wire::put_varint(buf, nonzero.len() as u64);
            for (i, c) in nonzero {
                buf.put_u8(i as u8);
                wire::put_varint(buf, c);
            }
        }
    }
}

fn get_family(buf: &mut Bytes) -> Result<FamilySnapshot, WireError> {
    let name = get_string(buf)?;
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof);
    }
    let value = match buf.get_u8() {
        FAMILY_COUNTER => FamilyValue::Counter(wire::get_varint(buf)?),
        FAMILY_GAUGE => FamilyValue::Gauge(wire::get_varint(buf)?),
        FAMILY_HISTOGRAM => {
            let sum = wire::get_varint(buf)?;
            let count = wire::get_varint(buf)?;
            let pairs = wire::get_varint(buf)?;
            if pairs > BUCKETS as u64 {
                return Err(WireError::InvalidPayload);
            }
            let mut counts = vec![0u64; BUCKETS];
            let mut prev: Option<u8> = None;
            for _ in 0..pairs {
                if !buf.has_remaining() {
                    return Err(WireError::UnexpectedEof);
                }
                let index = buf.get_u8();
                // Strictly increasing indexes make the encoding
                // canonical: one wire form per snapshot.
                if usize::from(index) >= BUCKETS || prev.is_some_and(|p| index <= p) {
                    return Err(WireError::InvalidPayload);
                }
                let bucket = wire::get_varint(buf)?;
                if bucket == 0 {
                    return Err(WireError::InvalidPayload);
                }
                counts[usize::from(index)] = bucket;
                prev = Some(index);
            }
            FamilyValue::Histogram(HistogramSnapshot { counts, sum, count })
        }
        tag => return Err(WireError::UnknownTag(tag)),
    };
    Ok(FamilySnapshot { name, value })
}

impl Request {
    /// Encodes the request as one frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Request::Get { key } => {
                buf.put_u8(REQ_GET);
                wire::put_bytes(&mut buf, key.as_bytes());
            }
            Request::Put { key, value } => {
                buf.put_u8(REQ_PUT);
                wire::put_bytes(&mut buf, key.as_bytes());
                wire::put_bytes(&mut buf, value);
            }
            Request::Delete { key } => {
                buf.put_u8(REQ_DELETE);
                wire::put_bytes(&mut buf, key.as_bytes());
            }
            Request::Status => buf.put_u8(REQ_STATUS),
            Request::Digest => buf.put_u8(REQ_DIGEST),
            Request::Sync { peer } => {
                buf.put_u8(REQ_SYNC);
                wire::put_bytes(&mut buf, peer.as_bytes());
            }
            Request::Metrics => buf.put_u8(REQ_METRICS),
        }
        buf.freeze()
    }

    /// Decodes one request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownTag`] on an unrecognized verb,
    /// [`WireError::UnexpectedEof`]/[`WireError::InvalidPayload`] on
    /// truncated or malformed fields.
    pub fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let req = match buf.get_u8() {
            REQ_GET => Request::Get {
                key: get_string(buf)?,
            },
            REQ_PUT => Request::Put {
                key: get_string(buf)?,
                value: wire::get_bytes(buf)?,
            },
            REQ_DELETE => Request::Delete {
                key: get_string(buf)?,
            },
            REQ_STATUS => Request::Status,
            REQ_DIGEST => Request::Digest,
            REQ_SYNC => Request::Sync {
                peer: get_string(buf)?,
            },
            REQ_METRICS => Request::Metrics,
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if buf.has_remaining() {
            return Err(WireError::InvalidPayload);
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Response::Value(value) => {
                buf.put_u8(RESP_VALUE);
                match value {
                    Some(v) => {
                        buf.put_u8(1);
                        wire::put_bytes(&mut buf, v);
                    }
                    None => buf.put_u8(0),
                }
            }
            Response::Ok => buf.put_u8(RESP_OK),
            Response::Status(info) => {
                buf.put_u8(RESP_STATUS);
                wire::put_varint(&mut buf, u64::from(info.site));
                wire::put_varint(&mut buf, info.keys);
                wire::put_varint(&mut buf, info.tracked);
                wire::put_varint(&mut buf, info.generation);
                wire::put_varint(&mut buf, info.conn_dials);
                wire::put_varint(&mut buf, info.conn_contacts);
                wire::put_varint(&mut buf, info.conn_live);
                // Appended after the original seven fields: the decoder
                // treats these (and any future appendees) as an optional
                // tail, so a new client still reads an old daemon's
                // status, and a newer daemon's extra fields never break
                // this decoder.
                wire::put_varint(&mut buf, info.uptime_secs);
                wire::put_varint(&mut buf, info.metrics_seq);
                wire::put_varint(&mut buf, info.wal_records);
                wire::put_varint(&mut buf, info.wal_bytes);
                wire::put_varint(&mut buf, info.wal_fsyncs);
                wire::put_varint(&mut buf, info.wal_checkpoint_seq);
            }
            Response::Digest(digest) => {
                buf.put_u8(RESP_DIGEST);
                wire::put_varint(&mut buf, *digest);
            }
            Response::Synced(report) => {
                buf.put_u8(RESP_SYNCED);
                for n in [
                    report.keys_examined,
                    report.keys_created,
                    report.keys_fast_forwarded,
                    report.keys_reconciled,
                    report.keys_unchanged,
                    report.meta_bytes,
                    report.value_bytes,
                ] {
                    wire::put_varint(&mut buf, n as u64);
                }
            }
            Response::Metrics(snapshot) => {
                buf.put_u8(RESP_METRICS);
                wire::put_varint(&mut buf, snapshot.seq);
                wire::put_varint(&mut buf, snapshot.families.len() as u64);
                for family in &snapshot.families {
                    put_family(&mut buf, family);
                }
            }
            Response::Err(msg) => {
                buf.put_u8(RESP_ERR);
                wire::put_bytes(&mut buf, msg.as_bytes());
            }
        }
        buf.freeze()
    }

    /// Decodes one response from a frame payload.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let resp = match buf.get_u8() {
            RESP_VALUE => {
                if !buf.has_remaining() {
                    return Err(WireError::UnexpectedEof);
                }
                let value = match buf.get_u8() {
                    0 => None,
                    1 => Some(wire::get_bytes(buf)?),
                    tag => return Err(WireError::UnknownTag(tag)),
                };
                Response::Value(value)
            }
            RESP_OK => Response::Ok,
            RESP_STATUS => {
                let site = wire::get_varint(buf)?;
                if site > u64::from(u32::MAX) {
                    return Err(WireError::InvalidPayload);
                }
                let mut info = StatusInfo {
                    site: site as u32,
                    keys: wire::get_varint(buf)?,
                    tracked: wire::get_varint(buf)?,
                    generation: wire::get_varint(buf)?,
                    conn_dials: wire::get_varint(buf)?,
                    conn_contacts: wire::get_varint(buf)?,
                    conn_live: wire::get_varint(buf)?,
                    uptime_secs: 0,
                    metrics_seq: 0,
                    wal_records: 0,
                    wal_bytes: 0,
                    wal_fsyncs: 0,
                    wal_checkpoint_seq: 0,
                };
                // Optional tail: fields appended by this or any later
                // protocol revision. A short payload (old daemon) leaves
                // the defaults; unrecognized extra fields are skipped so
                // newer daemons stay readable too. Tail fields must
                // still be well-formed varints — a truncated tail is a
                // broken frame, not an old one.
                if buf.has_remaining() {
                    info.uptime_secs = wire::get_varint(buf)?;
                }
                if buf.has_remaining() {
                    info.metrics_seq = wire::get_varint(buf)?;
                }
                if buf.has_remaining() {
                    info.wal_records = wire::get_varint(buf)?;
                }
                if buf.has_remaining() {
                    info.wal_bytes = wire::get_varint(buf)?;
                }
                if buf.has_remaining() {
                    info.wal_fsyncs = wire::get_varint(buf)?;
                }
                if buf.has_remaining() {
                    info.wal_checkpoint_seq = wire::get_varint(buf)?;
                }
                while buf.has_remaining() {
                    let _ = wire::get_varint(buf)?;
                }
                Response::Status(info)
            }
            RESP_DIGEST => Response::Digest(wire::get_varint(buf)?),
            RESP_SYNCED => {
                let mut fields = [0usize; 7];
                for field in &mut fields {
                    *field = wire::get_varint(buf)? as usize;
                }
                Response::Synced(KvSyncReport {
                    keys_examined: fields[0],
                    keys_created: fields[1],
                    keys_fast_forwarded: fields[2],
                    keys_reconciled: fields[3],
                    keys_unchanged: fields[4],
                    meta_bytes: fields[5],
                    value_bytes: fields[6],
                })
            }
            RESP_METRICS => {
                let seq = wire::get_varint(buf)?;
                let count = wire::get_varint(buf)?;
                let mut families = Vec::new();
                for _ in 0..count {
                    families.push(get_family(buf)?);
                }
                Response::Metrics(MetricsSnapshot { seq, families })
            }
            RESP_ERR => Response::Err(get_string(buf)?),
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if buf.has_remaining() {
            return Err(WireError::InvalidPayload);
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Get { key: "k".into() },
            Request::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
            Request::Delete { key: "gone".into() },
            Request::Status,
            Request::Digest,
            Request::Sync {
                peer: "127.0.0.1:7701".into(),
            },
            Request::Metrics,
        ];
        for req in reqs {
            let mut buf = req.encode();
            assert_eq!(Request::decode(&mut buf), Ok(req));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Value(None),
            Response::Value(Some(Bytes::from_static(b"hello"))),
            Response::Ok,
            Response::Status(StatusInfo {
                site: 3,
                keys: 10,
                tracked: 12,
                generation: 99,
                conn_dials: 1,
                conn_contacts: 41,
                conn_live: 1,
                uptime_secs: 3600,
                metrics_seq: 12,
                wal_records: 57,
                wal_bytes: 9001,
                wal_fsyncs: 7,
                wal_checkpoint_seq: 40,
            }),
            Response::Digest(u64::MAX),
            Response::Synced(KvSyncReport {
                keys_examined: 5,
                keys_created: 1,
                keys_fast_forwarded: 2,
                keys_reconciled: 1,
                keys_unchanged: 1,
                meta_bytes: 120,
                value_bytes: 34,
            }),
            Response::Err("no such peer".into()),
        ];
        for resp in resps {
            let mut buf = resp.encode();
            assert_eq!(Response::decode(&mut buf), Ok(resp));
        }
    }

    #[test]
    fn metrics_snapshot_roundtrips_through_the_wire() {
        use optrep_core::obs::{MetricsRegistry, BUCKETS};
        let registry = MetricsRegistry::new();
        registry.counter("optrep_contacts_total").add(17);
        registry.gauge("optrep_conn_live").set(3);
        let h = registry.histogram("optrep_contact_micros");
        h.record(0);
        h.record(900);
        h.record(u64::MAX);
        let snapshot = registry.snapshot();

        let mut buf = Response::Metrics(snapshot.clone()).encode();
        let decoded = Response::decode(&mut buf).expect("decode");
        assert_eq!(decoded, Response::Metrics(snapshot.clone()));
        let Response::Metrics(back) = decoded else {
            unreachable!()
        };
        let hist = back.histogram("optrep_contact_micros").unwrap();
        assert_eq!(hist.counts.len(), BUCKETS);
        assert_eq!(hist.count, 3);
    }

    #[test]
    fn metrics_decode_rejects_malformed_buckets() {
        use optrep_core::obs::{FamilySnapshot, FamilyValue, HistogramSnapshot, MetricsSnapshot};
        // Hand-roll a histogram family with an out-of-range bucket
        // index by corrupting a valid encoding's index byte.
        let mut counts = vec![0u64; optrep_core::obs::BUCKETS];
        counts[5] = 2;
        let snapshot = MetricsSnapshot {
            seq: 1,
            families: vec![FamilySnapshot {
                name: "h".into(),
                value: FamilyValue::Histogram(HistogramSnapshot {
                    counts,
                    sum: 40,
                    count: 2,
                }),
            }],
        };
        let good = Response::Metrics(snapshot).encode();
        let index_pos = good
            .iter()
            .rposition(|&b| b == 5)
            .expect("index byte present");
        let mut bad = good.to_vec();
        bad[index_pos] = 200; // >= BUCKETS
        let mut buf = Bytes::from(bad);
        assert_eq!(
            Response::decode(&mut buf),
            Err(WireError::InvalidPayload),
            "bucket index past BUCKETS must be rejected"
        );
    }

    #[test]
    fn status_decode_tolerates_old_and_future_tails() {
        let info = StatusInfo {
            site: 9,
            keys: 4,
            tracked: 6,
            generation: 77,
            conn_dials: 2,
            conn_contacts: 8,
            conn_live: 2,
            uptime_secs: 120,
            metrics_seq: 5,
            wal_records: 30,
            wal_bytes: 4096,
            wal_fsyncs: 3,
            wal_checkpoint_seq: 28,
        };

        // A pre-metrics daemon: only the original seven fields.
        let mut old = BytesMut::new();
        old.put_u8(RESP_STATUS);
        for v in [
            u64::from(info.site),
            info.keys,
            info.tracked,
            info.generation,
            info.conn_dials,
            info.conn_contacts,
            info.conn_live,
        ] {
            wire::put_varint(&mut old, v);
        }
        let mut buf = old.freeze();
        let decoded = Response::decode(&mut buf).expect("old payload decodes");
        assert_eq!(
            decoded,
            Response::Status(StatusInfo {
                uptime_secs: 0,
                metrics_seq: 0,
                wal_records: 0,
                wal_bytes: 0,
                wal_fsyncs: 0,
                wal_checkpoint_seq: 0,
                ..info
            })
        );

        // A future daemon: the current fields plus unknown appendees.
        let mut future = BytesMut::new();
        future.put_slice(&Response::Status(info).encode());
        wire::put_varint(&mut future, 0xDEAD);
        wire::put_varint(&mut future, 42);
        let mut buf = future.freeze();
        assert_eq!(
            Response::decode(&mut buf).expect("future payload decodes"),
            Response::Status(info),
            "unknown tail fields must be skipped, not rejected"
        );

        // A truncated tail is still a broken frame — detectable when
        // the cut lands mid-varint, so put a multi-byte value last and
        // slice one byte off it.
        let long_tail = Response::Status(StatusInfo {
            wal_checkpoint_seq: 300, // two-byte varint at the very end
            ..info
        })
        .encode();
        let mut buf = long_tail.slice(0..long_tail.len() - 1);
        assert!(
            Response::decode(&mut buf).is_err(),
            "a varint cut mid-byte in the tail must not decode"
        );
    }

    #[test]
    fn truncations_and_junk_are_rejected() {
        let full = Request::Put {
            key: "key".into(),
            value: Bytes::from_static(b"value"),
        }
        .encode();
        for cut in 0..full.len() {
            let mut buf = full.slice(0..cut);
            assert!(Request::decode(&mut buf).is_err(), "cut {cut}");
        }
        let mut junk = Bytes::from_static(&[0x7f, 1, 2]);
        assert_eq!(Request::decode(&mut junk), Err(WireError::UnknownTag(0x7f)));
        // Trailing garbage after a valid verb is a protocol error.
        let mut padded = BytesMut::new();
        padded.put_slice(&Request::Status.encode());
        padded.put_u8(0);
        let mut buf = padded.freeze();
        assert_eq!(Request::decode(&mut buf), Err(WireError::InvalidPayload));
    }
}
