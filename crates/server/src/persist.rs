//! Durable daemon state: a write-ahead log plus snapshot checkpoints.
//!
//! A durable node keeps two files in its `--data-dir`:
//!
//! * **`snapshot`** — the last checkpoint: a whole
//!   [`KvStore::encode_snapshot`] image plus the WAL sequence number it
//!   covers, checksummed, written atomically (tmp + fsync + rename).
//! * **`wal`** — the write-ahead log: one length-prefixed, checksummed
//!   record per committed mutation since that checkpoint. A local
//!   `put`/`delete` is one record; a committed `apply_contact` is also
//!   **one** record carrying every key the contact changed, so crash
//!   recovery reinstates the whole contact or none of it.
//!
//! Records log *post-states*, not operations: each record lists the
//! mutated keys with their [`KvStore::encode_entry`] images. Replay is
//! therefore exact (the rebuilt entry is byte-identical metadata and
//! value) and idempotent, and it never needs the resolver — whatever a
//! reconciliation decided is already in the logged state.
//!
//! Record layout, reusing the repo's varint framing ([`wire`]):
//!
//! ```text
//! varint seq | bytes payload | varint fnv64(seq, payload)
//! payload:  varint n, then n × { bytes key, bytes entry }
//! ```
//!
//! Replay tolerates exactly one failure shape: a record that runs past
//! end-of-file — a *torn tail*, the footprint of a crash mid-append —
//! is dropped (and the file truncated back to the last whole record).
//! Anything else — a checksum mismatch, a malformed payload, a
//! non-monotone sequence — is a hard replay error: the log is
//! corrupted, not merely unfinished, and silently skipping it would
//! resurrect a store that never existed.
//!
//! The fsync policy bounds what a crash can lose: `always` fsyncs every
//! append before the commit is acknowledged (an acked write survives
//! `kill -9`), `interval` fsyncs at most every configured period
//! (bounded loss, near-zero overhead), `never` leaves it to the OS.
//! Atomicity is policy-independent — a half-flushed tail is still a
//! torn record, so recovery still lands on a state the store actually
//! passed through.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use optrep_core::error::WireError;
use optrep_core::{wire, Error, Result, SiteId};
use optrep_kv::KvStore;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// WAL file name inside the data dir.
pub const WAL_FILE: &str = "wal";
/// Snapshot (checkpoint) file name inside the data dir.
pub const SNAPSHOT_FILE: &str = "snapshot";

const WAL_MAGIC: [u8; 4] = *b"OPWL";
const SNAPSHOT_MAGIC: [u8; 4] = *b"OPSN";
const FORMAT_VERSION: u8 = 1;

/// Default `interval` fsync period.
pub const DEFAULT_FSYNC_INTERVAL: Duration = Duration::from_millis(50);
/// Default time between background checkpoints.
pub const DEFAULT_CHECKPOINT_INTERVAL: Duration = Duration::from_secs(30);
/// Default WAL size that forces a checkpoint before the interval.
pub const DEFAULT_CHECKPOINT_WAL_BYTES: u64 = 8 * 1024 * 1024;

/// When appended WAL records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync every append before the commit is acknowledged.
    Always,
    /// Fsync at most once per period (appends in between are flushed by
    /// the next append past the deadline or the background tick).
    Interval(Duration),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag forms: `always`, `never`, `interval`
    /// (default period) or `interval:<ms>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(DEFAULT_FSYNC_INTERVAL)),
            other => {
                let ms: u64 = other.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms.max(1))))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Durability settings for one node (see
/// [`NodeConfig::with_durability`](crate::NodeConfig::with_durability)).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the `wal` and `snapshot` files; created if
    /// missing.
    pub data_dir: PathBuf,
    /// When appends reach the disk.
    pub fsync: FsyncPolicy,
    /// How often the background task writes a checkpoint and truncates
    /// the log.
    pub checkpoint_interval: Duration,
    /// WAL size that forces a checkpoint before the interval elapses.
    pub checkpoint_wal_bytes: u64,
}

impl DurabilityConfig {
    /// Durability in `data_dir` with the default policies
    /// (`interval` fsync, 30 s / 8 MiB checkpoints).
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Interval(DEFAULT_FSYNC_INTERVAL),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            checkpoint_wal_bytes: DEFAULT_CHECKPOINT_WAL_BYTES,
        }
    }

    /// Sets the fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the background checkpoint period.
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the WAL size that forces an early checkpoint.
    #[must_use]
    pub fn with_checkpoint_wal_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_wal_bytes = bytes;
        self
    }
}

/// What boot recovery found and did (surfaced by
/// [`Node::replay_report`](crate::Node::replay_report) and the
/// `optrepd` startup line).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayReport {
    /// Bytes of the snapshot image loaded (0 if none existed).
    pub snapshot_bytes: u64,
    /// WAL sequence the snapshot covered.
    pub snapshot_seq: u64,
    /// WAL records replayed into the store.
    pub wal_records_applied: u64,
    /// WAL records skipped because the snapshot already covered them
    /// (a crash landed between the snapshot rename and the log trim).
    pub wal_records_skipped: u64,
    /// WAL bytes scanned.
    pub wal_bytes: u64,
    /// Whether a torn tail record was dropped.
    pub torn_tail: bool,
    /// Tracked entries in the recovered store.
    pub entries: u64,
    /// Wall-clock spent recovering.
    pub elapsed: Duration,
}

/// FNV-1a over the record's sequence number and payload — the same
/// cheap, deterministic hash [`KvStore::replica_digest`] uses.
fn fnv64(seq: u64, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in seq.to_le_bytes().iter().chain(payload) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Encodes one WAL record: `varint seq | bytes payload | varint checksum`.
pub fn encode_record(seq: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + 24);
    wire::put_varint(&mut buf, seq);
    wire::put_bytes(&mut buf, payload);
    wire::put_varint(&mut buf, fnv64(seq, payload));
    buf.freeze()
}

/// Decodes one WAL record, verifying its checksum.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] when the record runs past the buffer —
/// the torn-tail shape replay tolerates; [`WireError::InvalidPayload`]
/// on a checksum mismatch — corruption, which replay must not skip.
pub fn decode_record(buf: &mut Bytes) -> std::result::Result<(u64, Bytes), WireError> {
    let seq = wire::get_varint(buf)?;
    let payload = wire::get_bytes(buf)?;
    if wire::get_varint(buf)? != fnv64(seq, &payload) {
        return Err(WireError::InvalidPayload);
    }
    Ok((seq, payload))
}

/// Encodes one record's payload: the post-state of every key a commit
/// changed.
pub fn encode_payload(changed: &[(String, Bytes)]) -> Bytes {
    let mut buf = BytesMut::new();
    wire::put_varint(&mut buf, changed.len() as u64);
    for (key, entry) in changed {
        wire::put_bytes(&mut buf, key.as_bytes());
        wire::put_bytes(&mut buf, entry);
    }
    buf.freeze()
}

/// Applies one record's payload to `store`. Each listed key is
/// overwritten with its logged post-state.
fn apply_payload(store: &mut KvStore, mut payload: Bytes) -> std::result::Result<(), WireError> {
    let n = wire::get_varint(&mut payload)?;
    for _ in 0..n {
        let key_bytes = wire::get_bytes(&mut payload)?;
        let key = String::from_utf8(key_bytes.to_vec()).map_err(|_| WireError::InvalidPayload)?;
        let mut entry = wire::get_bytes(&mut payload)?;
        store.apply_encoded_entry(key, &mut entry)?;
    }
    if payload.has_remaining() {
        return Err(WireError::InvalidPayload);
    }
    Ok(())
}

fn wal_header(site: SiteId) -> Bytes {
    let mut buf = BytesMut::with_capacity(16);
    buf.put_slice(&WAL_MAGIC);
    buf.put_u8(FORMAT_VERSION);
    wire::put_varint(&mut buf, u64::from(site.index()));
    buf.freeze()
}

fn corrupt(message: impl Into<String>) -> Error {
    Error::UnexpectedMessage {
        protocol: "persist",
        message: message.into(),
    }
}

fn io_err(context: &str, e: &io::Error) -> Error {
    corrupt(format!("{context}: {e}"))
}

/// Writes `bytes` to `dir/name` atomically: tmp file, fsync, rename,
/// then a best-effort fsync of the directory so the rename itself is
/// durable. A crash at any point leaves either the old file or the new
/// one, never a mix.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(name))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(())
}

/// The open durable state of one node: the WAL append handle plus the
/// bookkeeping a checkpoint needs. Callers serialize access behind the
/// node's persist mutex; every append happens under the store lock of
/// the mutation it logs, so a checkpoint that holds both sees a frozen
/// (store, seq) pair.
pub struct Persist {
    dir: PathBuf,
    site: SiteId,
    policy: FsyncPolicy,
    wal: File,
    /// Sequence of the last appended (or replayed) record.
    seq: u64,
    /// Sequence the on-disk snapshot covers.
    snapshot_seq: u64,
    /// Current WAL file length (header included).
    wal_len: u64,
    /// Unsynced bytes sit in the file.
    dirty: bool,
    last_fsync: Instant,
    // Cumulative counters for this process lifetime (status/metrics).
    records: u64,
    appended_bytes: u64,
    fsyncs: u64,
    checkpoints: u64,
}

impl std::fmt::Debug for Persist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Persist")
            .field("dir", &self.dir)
            .field("seq", &self.seq)
            .field("snapshot_seq", &self.snapshot_seq)
            .field("wal_len", &self.wal_len)
            .finish_non_exhaustive()
    }
}

impl Persist {
    /// Opens (or initializes) the data dir and recovers the store:
    /// snapshot first, then every WAL record past the snapshot's
    /// sequence, dropping a torn tail record and truncating it away.
    ///
    /// # Errors
    ///
    /// I/O failures, a site mismatch (the dir belongs to another
    /// replica), or log corruption anywhere before the tail.
    pub fn open(
        config: &DurabilityConfig,
        site: SiteId,
    ) -> Result<(Persist, KvStore, ReplayReport)> {
        let started = Instant::now();
        let dir = config.data_dir.clone();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("cannot create data dir", &e))?;
        let mut report = ReplayReport::default();

        // Snapshot: the checkpointed base image, or an empty store.
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (mut store, snapshot_seq) = match read_file(&snapshot_path)? {
            Some(bytes) => {
                report.snapshot_bytes = bytes.len() as u64;
                let (covered, image) = decode_snapshot_file(bytes)
                    .map_err(|e| corrupt(format!("snapshot file corrupt: {e:?}")))?;
                let mut image = image;
                let store = KvStore::decode_snapshot(&mut image)
                    .map_err(|e| corrupt(format!("snapshot image corrupt: {e:?}")))?;
                (store, covered)
            }
            None => (KvStore::new(site), 0),
        };
        if store.site() != site {
            return Err(corrupt(format!(
                "data dir belongs to site {}, not {}",
                store.site(),
                site
            )));
        }
        report.snapshot_seq = snapshot_seq;

        // WAL: replay every record past the snapshot, tolerating only a
        // torn tail.
        let wal_path = dir.join(WAL_FILE);
        let mut seq = snapshot_seq;
        match read_file(&wal_path)? {
            Some(bytes) => {
                report.wal_bytes = bytes.len() as u64;
                let scan = replay_wal(&bytes, site, snapshot_seq, &mut store, &mut report)?;
                seq = seq.max(scan.last_seq);
                if scan.truncate_to < bytes.len() as u64 {
                    // Cut the torn record off so future appends extend a
                    // clean log instead of garbage.
                    report.torn_tail = true;
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&wal_path)
                        .map_err(|e| io_err("cannot reopen wal", &e))?;
                    file.set_len(scan.truncate_to)
                        .map_err(|e| io_err("cannot truncate torn wal tail", &e))?;
                    file.sync_data()
                        .map_err(|e| io_err("cannot sync wal", &e))?;
                }
            }
            None => {
                write_atomic(&dir, WAL_FILE, &wal_header(site))
                    .map_err(|e| io_err("cannot initialize wal", &e))?;
            }
        }

        let wal = OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err("cannot open wal for append", &e))?;
        let wal_len = wal
            .metadata()
            .map_err(|e| io_err("cannot stat wal", &e))?
            .len();
        report.entries = store.tracked_entries() as u64;
        report.elapsed = started.elapsed();
        let persist = Persist {
            dir,
            site,
            policy: config.fsync,
            wal,
            seq,
            snapshot_seq,
            wal_len,
            dirty: false,
            last_fsync: Instant::now(),
            records: 0,
            appended_bytes: 0,
            fsyncs: 0,
            checkpoints: 0,
        };
        Ok((persist, store, report))
    }

    /// Appends one record logging the post-states of `changed`,
    /// fsyncing per policy. Call under the store lock of the mutation
    /// being logged, before acknowledging it. A no-op commit (`changed`
    /// empty) appends nothing.
    ///
    /// # Errors
    ///
    /// The underlying write or fsync failure. The in-memory commit has
    /// already happened; the caller reports the durability failure
    /// instead of acknowledging.
    pub fn append(&mut self, changed: &[(String, Bytes)]) -> io::Result<u64> {
        if changed.is_empty() {
            return Ok(0);
        }
        let record = encode_record(self.seq + 1, &encode_payload(changed));
        self.wal.write_all(&record)?;
        self.seq += 1;
        self.wal_len += record.len() as u64;
        self.records += 1;
        self.appended_bytes += record.len() as u64;
        self.dirty = true;
        match self.policy {
            FsyncPolicy::Always => {
                self.sync()?;
            }
            FsyncPolicy::Interval(period) => {
                if self.last_fsync.elapsed() >= period {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(record.len() as u64)
    }

    /// Fsyncs the WAL if it has unsynced bytes. Returns whether a sync
    /// actually ran.
    ///
    /// # Errors
    ///
    /// The underlying fsync failure.
    pub fn sync(&mut self) -> io::Result<bool> {
        if !self.dirty {
            return Ok(false);
        }
        self.wal.sync_data()?;
        self.dirty = false;
        self.fsyncs += 1;
        self.last_fsync = Instant::now();
        Ok(true)
    }

    /// Whether the `interval` policy owes the log an fsync (the
    /// background tick's backstop for quiet periods).
    pub fn fsync_due(&self) -> bool {
        match self.policy {
            FsyncPolicy::Interval(period) => self.dirty && self.last_fsync.elapsed() >= period,
            _ => false,
        }
    }

    /// Whether the WAL holds records the snapshot does not cover.
    pub fn needs_checkpoint(&self) -> bool {
        self.seq > self.snapshot_seq
    }

    /// Writes `store_image` (an [`KvStore::encode_snapshot`] taken
    /// while this handle's lock froze appends) as the new snapshot,
    /// covering every record appended so far, then truncates the log to
    /// just its header. Both file swaps are atomic, and the snapshot
    /// lands before the log shrinks, so a crash anywhere leaves a
    /// recoverable pair: old snapshot + full log, new snapshot + full
    /// log (replay skips covered records), or new snapshot + empty log.
    ///
    /// # Errors
    ///
    /// The underlying I/O failure; the previous snapshot and log remain
    /// in force.
    pub fn checkpoint(&mut self, store_image: &[u8]) -> io::Result<()> {
        let covered = self.seq;
        write_atomic(
            &self.dir,
            SNAPSHOT_FILE,
            &encode_snapshot_file(covered, store_image),
        )?;
        let header = wal_header(self.site);
        write_atomic(&self.dir, WAL_FILE, &header)?;
        self.wal = OpenOptions::new()
            .append(true)
            .open(self.dir.join(WAL_FILE))?;
        self.snapshot_seq = covered;
        self.wal_len = header.len() as u64;
        self.dirty = false;
        self.last_fsync = Instant::now();
        self.checkpoints += 1;
        Ok(())
    }

    /// Sequence of the last appended record.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Sequence the on-disk snapshot covers.
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Current WAL file length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Records appended by this process.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Record bytes appended by this process.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Fsyncs issued by this process.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Checkpoints written by this process.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }
}

/// Reads a whole file, mapping "not found" to `None`.
fn read_file(path: &Path) -> Result<Option<Bytes>> {
    match File::open(path) {
        Ok(mut file) => {
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)
                .map_err(|e| io_err("cannot read file", &e))?;
            Ok(Some(Bytes::from(bytes)))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err("cannot open file", &e)),
    }
}

fn encode_snapshot_file(covered_seq: u64, store_image: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(store_image.len() + 24);
    buf.put_slice(&SNAPSHOT_MAGIC);
    buf.put_u8(FORMAT_VERSION);
    wire::put_varint(&mut buf, covered_seq);
    wire::put_bytes(&mut buf, store_image);
    wire::put_varint(&mut buf, fnv64(covered_seq, store_image));
    buf.freeze()
}

/// Decodes a snapshot file into (covered sequence, store image).
/// Unlike the WAL, *any* defect is fatal — the file was written
/// atomically, so a bad byte is corruption, not a crash footprint.
fn decode_snapshot_file(mut buf: Bytes) -> std::result::Result<(u64, Bytes), WireError> {
    if buf.remaining() < SNAPSHOT_MAGIC.len() + 1 {
        return Err(WireError::UnexpectedEof);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != SNAPSHOT_MAGIC {
        return Err(WireError::InvalidPayload);
    }
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion {
            ours: FORMAT_VERSION,
            theirs: version,
        });
    }
    let covered_seq = wire::get_varint(&mut buf)?;
    let image = wire::get_bytes(&mut buf)?;
    if wire::get_varint(&mut buf)? != fnv64(covered_seq, &image) {
        return Err(WireError::InvalidPayload);
    }
    if buf.has_remaining() {
        return Err(WireError::InvalidPayload);
    }
    Ok((covered_seq, image))
}

struct WalScan {
    /// Highest record sequence seen (whole records only).
    last_seq: u64,
    /// File offset just past the last whole record — where a torn tail,
    /// if any, begins.
    truncate_to: u64,
}

/// Replays one WAL image into `store`.
///
/// Records with `seq <= snapshot_seq` are validated but not applied
/// (the snapshot already holds their effect; they survive only when a
/// crash landed between the checkpoint's two file swaps). A record
/// failing with [`WireError::UnexpectedEof`] is the torn tail: replay
/// stops cleanly before it. Any other failure is corruption and aborts
/// recovery.
fn replay_wal(
    bytes: &Bytes,
    site: SiteId,
    snapshot_seq: u64,
    store: &mut KvStore,
    report: &mut ReplayReport,
) -> Result<WalScan> {
    let mut buf = bytes.clone();
    let header = wal_header(site);
    // Header: magic + version are fixed bytes; the site varint must
    // match this node (a foreign data dir is operator error).
    if buf.remaining() < header.len() || buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(corrupt("wal header missing or wrong magic"));
    }
    if buf[WAL_MAGIC.len()] != FORMAT_VERSION {
        return Err(corrupt(format!(
            "wal format version {} (this build speaks {})",
            buf[WAL_MAGIC.len()],
            FORMAT_VERSION
        )));
    }
    if buf[..header.len()] != header[..] {
        return Err(corrupt("wal belongs to a different site"));
    }
    buf.advance(header.len());

    let total = bytes.len() as u64;
    let mut last_seq = snapshot_seq;
    let mut prev_seq: Option<u64> = None;
    loop {
        let offset = total - buf.remaining() as u64;
        if !buf.has_remaining() {
            return Ok(WalScan {
                last_seq,
                truncate_to: offset,
            });
        }
        match decode_record(&mut buf) {
            Ok((seq, payload)) => {
                if prev_seq.is_some_and(|prev| seq != prev + 1) {
                    return Err(corrupt(format!(
                        "wal sequence jumped from {:?} to {seq}",
                        prev_seq
                    )));
                }
                prev_seq = Some(seq);
                last_seq = last_seq.max(seq);
                if seq <= snapshot_seq {
                    report.wal_records_skipped += 1;
                } else {
                    apply_payload(store, payload)
                        .map_err(|e| corrupt(format!("wal record {seq} payload corrupt: {e:?}")))?;
                    report.wal_records_applied += 1;
                }
            }
            // The torn tail: the record ran past end-of-file, which is
            // exactly what a crash mid-append (or mid-flush) leaves.
            Err(WireError::UnexpectedEof) => {
                return Ok(WalScan {
                    last_seq,
                    truncate_to: offset,
                });
            }
            Err(e) => {
                return Err(corrupt(format!(
                    "wal corrupt at byte {offset}: {e:?} (not a torn tail; refusing to skip)"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "optrep-persist-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(store: &KvStore, key: &str) -> (String, Bytes) {
        (key.to_string(), store.encode_entry(key).unwrap())
    }

    #[test]
    fn record_roundtrip_and_checksum() {
        let payload = b"some payload";
        let mut buf = encode_record(7, payload);
        let (seq, got) = decode_record(&mut buf).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(&got[..], payload);
        assert!(!buf.has_remaining());

        let mut flipped = encode_record(7, payload).to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let mut buf = Bytes::from(flipped);
        assert_eq!(decode_record(&mut buf), Err(WireError::InvalidPayload));
    }

    #[test]
    fn empty_dir_opens_empty_and_replays_appends() {
        let dir = tmpdir("basic");
        let config = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let site = SiteId::new(3);
        let (mut persist, mut store, report) = Persist::open(&config, site).unwrap();
        assert_eq!(report.wal_records_applied, 0);
        assert!(store.is_empty());

        store.put("a", "1");
        persist.append(&[entry(&store, "a")]).unwrap();
        store.put("b", "2");
        store.delete("a");
        // One record carrying two post-states, like a contact commit.
        persist
            .append(&[entry(&store, "b"), entry(&store, "a")])
            .unwrap();
        assert_eq!(persist.seq(), 2);
        assert_eq!(persist.records(), 2);
        assert!(persist.fsyncs() >= 2, "fsync=always syncs every append");
        drop(persist);

        let (persist, recovered, report) = Persist::open(&config, site).unwrap();
        assert_eq!(report.wal_records_applied, 2);
        assert!(!report.torn_tail);
        assert_eq!(recovered.replica_digest(), store.replica_digest());
        assert_eq!(persist.seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_and_recovery_uses_both_layers() {
        let dir = tmpdir("ckpt");
        let config = DurabilityConfig::new(&dir);
        let site = SiteId::new(0);
        let (mut persist, mut store, _) = Persist::open(&config, site).unwrap();
        store.put("pre", "1");
        persist.append(&[entry(&store, "pre")]).unwrap();
        let wal_before = persist.wal_len();
        persist.checkpoint(&store.encode_snapshot()).unwrap();
        assert!(persist.wal_len() < wal_before, "checkpoint truncates");
        assert_eq!(persist.snapshot_seq(), 1);
        assert!(!persist.needs_checkpoint());

        store.put("post", "2");
        persist.append(&[entry(&store, "post")]).unwrap();
        assert!(persist.needs_checkpoint());
        drop(persist);

        let (persist, recovered, report) = Persist::open(&config, site).unwrap();
        assert_eq!(report.snapshot_seq, 1);
        assert_eq!(
            report.wal_records_applied, 1,
            "only the post-checkpoint record"
        );
        assert_eq!(recovered.replica_digest(), store.replica_digest());
        assert_eq!(persist.seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = tmpdir("torn");
        let config = DurabilityConfig::new(&dir);
        let site = SiteId::new(1);
        let (mut persist, mut store, _) = Persist::open(&config, site).unwrap();
        store.put("whole", "survives");
        persist.append(&[entry(&store, "whole")]).unwrap();
        let survivor_digest = store.replica_digest();
        store.put("torn", "lost");
        persist.append(&[entry(&store, "torn")]).unwrap();
        let full = persist.wal_len();
        drop(persist);

        // Tear the final record: cut one byte off the file.
        let wal_path = dir.join(WAL_FILE);
        let file = OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(full - 1).unwrap();
        drop(file);

        let (persist, recovered, report) = Persist::open(&config, site).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.wal_records_applied, 1);
        assert_eq!(recovered.replica_digest(), survivor_digest);
        // The tear was truncated away: the file now ends at the last
        // whole record, so appends extend a clean log.
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            persist.wal_len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = tmpdir("corrupt");
        let config = DurabilityConfig::new(&dir);
        let site = SiteId::new(1);
        let (mut persist, mut store, _) = Persist::open(&config, site).unwrap();
        store.put("first", "aaaaaaaaaaaaaaaa");
        persist.append(&[entry(&store, "first")]).unwrap();
        let first_end = persist.wal_len();
        store.put("second", "b");
        persist.append(&[entry(&store, "second")]).unwrap();
        drop(persist);

        // Flip a byte inside the first record's payload (safely past
        // the varint framing): the checksum must catch it, and because
        // a whole record follows, this is corruption, not a tear.
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let mid = (first_end as usize) - 4;
        bytes[mid] ^= 0xFF;
        std::fs::write(&wal_path, &bytes).unwrap();

        let err = Persist::open(&config, site).unwrap_err();
        assert!(format!("{err}").contains("refusing to skip"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_site_data_dir_is_refused() {
        let dir = tmpdir("foreign");
        let config = DurabilityConfig::new(&dir);
        let (_persist, _store, _) = Persist::open(&config, SiteId::new(4)).unwrap();
        let err = Persist::open(&config, SiteId::new(5)).unwrap_err();
        assert!(format!("{err}").contains("site"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_every_form() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(DEFAULT_FSYNC_INTERVAL))
        );
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Some(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!(FsyncPolicy::parse("interval:x"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
