//! Cross-layer acceptance tests for the `obs` tracing layer: the event
//! stream is a second, independent accounting of the same execution, so
//! it must agree byte-for-byte with the transport's own counters and
//! survive the online invariant checker under arbitrary workloads.
//!
//! * Property: for a random multi-object mux pull, the `FrameTx` events
//!   (classified per frame by direction) must account for exactly the
//!   `LinkStats` byte counters of the same contact replayed over the
//!   simulated link: client frames equal `bytes_ab`, server frames
//!   lower-bound `bytes_ba` (the timed regime only adds overrun), and
//!   the `LinkBytes`/`LinkExcess` events reproduce the link's counters.
//! * `CheckSink` (byte conservation, `meta_elements == |Δ|+|Γ|`, the
//!   Theorem 5.1 redundancy bound, COMPARE-vs-oracle agreement) holds
//!   across the sync drivers, random legal traces, and gossip
//!   convergence.
#![cfg(feature = "obs")]

use std::sync::Arc;

use bytes::Bytes;
use optrep::core::obs::{self, CheckSink, RingSink, SyncEvent};
use optrep::core::sync::drive::{sync_brv, sync_crv, sync_srv};
use optrep::core::{RotatingVector, SiteId, Srv};
use optrep::net::sim::{SimConfig, SimLink};
use optrep::replication::mux::{run_contact, BatchPullClient, BatchPullServer};
use optrep::replication::payload::TokenSet;
use optrep::replication::reconcile::UnionReconciler;
use optrep::replication::{Cluster, ContactOptions, ObjectId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Client-side `(name, vector)` and server-side `(name, vector, payload)`
/// object sets built from one random spec per object:
/// `(shared updates, server is dirty, payload length)`.
#[allow(clippy::type_complexity)]
fn scenario(spec: &[(u8, bool, u8)]) -> (Vec<(Bytes, Srv)>, Vec<(Bytes, Srv, Bytes)>) {
    let mut client = Vec::with_capacity(spec.len());
    let mut server = Vec::with_capacity(spec.len());
    for (i, &(updates, dirty, payload_len)) in spec.iter().enumerate() {
        let name = Bytes::from(format!("obj{i:04}").into_bytes());
        let mut v = Srv::new();
        for u in 0..updates {
            v.record_update(SiteId::new(u32::from(u) % 5));
        }
        client.push((name.clone(), v.clone()));
        let mut sv = v;
        if dirty {
            sv.record_update(SiteId::new(9));
        }
        let payload = Bytes::from(vec![b'x'; payload_len as usize]);
        server.push((name, sv, payload));
    }
    (client, server)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: per-contact event bytes equal the link's byte counters
    /// in both directions, for random object sets.
    #[test]
    fn mux_frame_events_conserve_link_bytes(
        spec in proptest::collection::vec((0u8..6, any::<bool>(), 0u8..48), 1..24)
    ) {
        // Lockstep run under RingSink (event capture) + CheckSink
        // (online invariants, including per-contact byte conservation).
        let ring = Arc::new(RingSink::new(1 << 16));
        let check = Arc::new(CheckSink::new());
        let (c, s) = scenario(&spec);
        let report = obs::with(check.clone(), || {
            obs::with(ring.clone(), || {
                run_contact(&mut BatchPullClient::new(c), &mut BatchPullServer::new(s))
            })
        }).expect("lockstep contact");
        prop_assert!(check.checked_contacts() >= 1);

        let (mut client_bytes, mut server_bytes) = (0u64, 0u64);
        for ev in ring.events() {
            if let SyncEvent::FrameTx { client, compare, meta, framing, payload, .. } = ev {
                let total = compare + meta + framing + payload;
                if client { client_bytes += total } else { server_bytes += total }
            }
        }
        prop_assert_eq!(client_bytes + server_bytes, report.total_bytes);

        // The same contact replayed over the simulated link, capturing
        // the link-level events. The timed regime lets the server
        // stream ahead of the client's cancellations, so its wire bytes
        // exceed the lockstep accounting by exactly the β overrun —
        // the paper's decomposition of timed cost into optimal + excess.
        let ring = Arc::new(RingSink::new(1 << 16));
        let (c, s) = scenario(&spec);
        let sim = obs::with(ring.clone(), || {
            let mut link = SimLink::new(
                BatchPullClient::new(c),
                BatchPullServer::new(s),
                SimConfig::symmetric(1_000_000, None),
            );
            link.run()
        })
        .expect("contact over sim link");
        prop_assert_eq!(client_bytes, sim.stats.bytes_ab as u64, "client direction is request-driven: identical in both regimes");
        // The timed server direction can only *add* overrun (payload β
        // plus speculative metadata) on top of the lockstep optimum.
        let timed_ba = sim.stats.bytes_ba as u64;
        prop_assert!(
            server_bytes <= timed_ba,
            "timed server bytes {timed_ba} below the lockstep accounting {server_bytes}"
        );

        // And the `LinkBytes`/`LinkExcess` events must reproduce the
        // link's own counters exactly.
        let (mut ab, mut ba, mut excess) = (0u64, 0u64, 0u64);
        for ev in ring.events() {
            match ev {
                SyncEvent::LinkBytes { forward: true, bytes } => ab += bytes,
                SyncEvent::LinkBytes { forward: false, bytes } => ba += bytes,
                SyncEvent::LinkExcess { bytes } => excess += bytes,
                _ => {}
            }
        }
        prop_assert_eq!(ab, sim.stats.bytes_ab as u64, "LinkBytes events vs bytes_ab");
        prop_assert_eq!(ba, sim.stats.bytes_ba as u64, "LinkBytes events vs bytes_ba");
        prop_assert_eq!(excess, sim.excess_bytes as u64, "LinkExcess events vs β");
    }

    /// `CheckSink` holds over random legal traces of the three rotating
    /// schemes, including concurrent (reconciling) syncs with the
    /// Parker §C increment.
    #[test]
    fn check_sink_holds_over_random_traces(
        ops in proptest::collection::vec((0usize..4, 0usize..4, any::<bool>()), 1..32)
    ) {
        let check = Arc::new(CheckSink::new());
        let mut expected_sessions = 0u64;
        obs::with(check.clone(), || -> Result<(), optrep::core::Error> {
            let mut brv = vec![optrep::core::Brv::new(); 4];
            let mut crv = vec![optrep::core::Crv::new(); 4];
            let mut srv = vec![Srv::new(); 4];
            for &(a, mut b, update) in &ops {
                if update {
                    brv[a].record_update(SiteId::new(a as u32));
                    crv[a].record_update(SiteId::new(a as u32));
                    srv[a].record_update(SiteId::new(a as u32));
                    continue;
                }
                if b == a { b = (b + 1) % 4; }
                // BRV systems *exclude* conflicts: the driver refuses
                // concurrent vectors, so only sync when causally related.
                if !brv[a].compare(&brv[b]).is_concurrent() {
                    let src = brv[b].clone();
                    sync_brv(&mut brv[a], &src)?;
                    expected_sessions += 1;
                }
                let src = crv[b].clone();
                let concurrent = sync_crv(&mut crv[a], &src)?
                    .relation
                    .is_some_and(|r| r.is_concurrent());
                let src = srv[b].clone();
                sync_srv(&mut srv[a], &src)?;
                expected_sessions += 2;
                if concurrent {
                    // Parker §C: reconciliation ends with a local update.
                    crv[a].record_update(SiteId::new(a as u32));
                    srv[a].record_update(SiteId::new(a as u32));
                }
            }
            Ok(())
        }).expect("trace syncs");
        // Every close-time invariant and every COMPARE-vs-oracle verdict
        // was checked.
        prop_assert_eq!(check.checked_sessions(), expected_sessions);
        prop_assert_eq!(check.checked_compares(), expected_sessions);
    }
}

/// `CheckSink` holds across full gossip convergence (per-object sessions
/// and multiplexed contacts), where sessions nest inside replication
/// scopes and reconciliation paths fire.
#[test]
fn check_sink_holds_over_gossip_convergence() {
    let obj = ObjectId::new(7);
    let check = Arc::new(CheckSink::new());
    obs::with(check.clone(), || {
        let mut rng = StdRng::seed_from_u64(42);
        let mut cluster: Cluster<Srv, TokenSet, UnionReconciler> = Cluster::new(6, UnionReconciler);
        cluster
            .site_mut(SiteId::new(0))
            .create_object(obj, TokenSet::singleton("init"));
        for round in 0..4u32 {
            cluster
                .round_with(&mut rng, &ContactOptions::direct().with_object(obj))
                .expect("gossip round");
            for i in 0..4u32 {
                let site = SiteId::new(i);
                if cluster.site(site).replica(obj).is_some() {
                    cluster.site_mut(site).update(obj, |p| {
                        p.insert(format!("{site}:{round}"));
                    });
                }
            }
        }
        let (rounds, _) = cluster
            .converge_with(&mut rng, &ContactOptions::direct().with_object(obj), 200)
            .expect("gossip");
        rounds.expect("converged");
        let (rounds, _) = cluster
            .converge_with(&mut rng, &ContactOptions::mux(), 200)
            .expect("mux gossip");
        rounds.expect("converged");
        assert!(cluster.stats().sessions > 0);
        assert!(cluster.stats().contacts > 0);
    });
    // Replication sessions compare *through* the sync protocol
    // (`COMPARE_IS_SYNC`), so no oracle verdicts are expected here —
    // only the close-time and byte-conservation invariants.
    assert!(check.checked_sessions() > 0, "sessions were checked");
    assert!(check.checked_contacts() > 0, "contacts were checked");
}

/// The trace is an accounting layer, not a participant: running the same
/// contact with and without sinks must move exactly the same bytes.
#[test]
fn tracing_does_not_change_wire_traffic() {
    let spec: Vec<(u8, bool, u8)> = (0..32).map(|i| (i % 5, i % 7 == 0, i)).collect();
    let (c, s) = scenario(&spec);
    let bare = run_contact(&mut BatchPullClient::new(c), &mut BatchPullServer::new(s))
        .expect("bare contact");
    let ring = Arc::new(RingSink::new(1 << 16));
    let (c, s) = scenario(&spec);
    let traced = obs::with(ring.clone(), || {
        run_contact(&mut BatchPullClient::new(c), &mut BatchPullServer::new(s))
    })
    .expect("traced contact");
    assert_eq!(bare.total_bytes, traced.total_bytes);
    assert_eq!(bare.round_trips, traced.round_trips);
    assert!(!ring.events().is_empty());
}
