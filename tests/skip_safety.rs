//! Skip-safety and segment-bit invariants for SRV under adversarial,
//! reconciliation-heavy traces.
//!
//! The soundness of `SYNCS` rests on the segment property (§4): if a
//! receiver knows one element of a segment, it knows the whole segment —
//! so skipping the tail loses nothing. These tests hammer that invariant:
//! after *any* legal trace, synchronizing any replica pair must yield the
//! exact element-wise maximum (a wrongly skipped element would surface as
//! a missing value), including under pipelining delays where skips go
//! stale.

use optrep::core::sync::drive::{sync_srv, sync_srv_opts};
use optrep::core::sync::SyncOptions;
use optrep::core::{RotatingVector, SiteId, Srv};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    Update { r: usize },
    Sync { dst: usize, src: usize },
}

fn steps(replicas: usize, len: usize) -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        1 => (0..replicas).prop_map(|r| Step::Update { r }),
        // Sync-heavy mix maximizes reconciliations and tag churn.
        2 => (0..replicas, 0..replicas - 1).prop_map(move |(dst, mut src)| {
            if src >= dst {
                src += 1;
            }
            Step::Sync { dst, src }
        }),
    ];
    proptest::collection::vec(step, 1..len)
}

fn run_trace(replicas: usize, trace: &[Step], opts: SyncOptions) -> Vec<Srv> {
    let mut real: Vec<Srv> = (0..replicas).map(|_| Srv::default()).collect();
    for step in trace {
        match *step {
            Step::Update { r } => {
                real[r].record_update(SiteId::new(r as u32));
            }
            Step::Sync { dst, src } => {
                let relation = real[dst].compare(&real[src]);
                let b = real[src].clone();
                sync_srv_opts(&mut real[dst], &b, opts).expect("sync");
                if relation.is_concurrent() {
                    real[dst].record_update(SiteId::new(dst as u32));
                }
            }
        }
    }
    real
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_pairwise_sync_yields_exact_max(trace in steps(5, 80)) {
        let replicas = run_trace(5, &trace, SyncOptions::default());
        for i in 0..replicas.len() {
            for j in 0..replicas.len() {
                if i == j {
                    continue;
                }
                let mut a = replicas[i].clone();
                let b = replicas[j].clone();
                let mut expected = a.to_version_vector();
                expected.merge(&b.to_version_vector());
                sync_srv(&mut a, &b).expect("pairwise sync");
                prop_assert_eq!(
                    a.to_version_vector(),
                    expected,
                    "sync {} ⇐ {} skipped something it should not have",
                    i, j
                );
            }
        }
    }

    #[test]
    fn stale_skips_under_latency_never_lose_elements(trace in steps(4, 60)) {
        // Pipelining delays make skips arrive late (stale) and leave
        // in-flight elements; outcomes must match the lockstep run.
        let lockstep = run_trace(4, &trace, SyncOptions::default());
        let delayed = run_trace(
            4,
            &trace,
            SyncOptions {
                latency_forward: 4,
                latency_backward: 11,
                bandwidth: Some(1),
                ..SyncOptions::default()
            },
        );
        for (i, (a, b)) in lockstep.iter().zip(&delayed).enumerate() {
            prop_assert_eq!(
                a.to_version_vector(),
                b.to_version_vector(),
                "replica {} diverged under latency",
                i
            );
        }
    }

    #[test]
    fn segment_bits_partition_the_vector(trace in steps(4, 60)) {
        // Structural sanity: segments cover all elements, in order, and
        // every element appears exactly once.
        let replicas = run_trace(4, &trace, SyncOptions::default());
        for v in &replicas {
            let from_segments: Vec<_> = v
                .segments()
                .into_iter()
                .flatten()
                .map(|e| (e.site, e.value))
                .collect();
            let from_iter: Vec<_> = v.iter().map(|e| (e.site, e.value)).collect();
            prop_assert_eq!(from_segments, from_iter);
        }
    }

    #[test]
    fn skipped_segments_were_fully_known(trace in steps(4, 50)) {
        // Direct check of the §4 segment property at sync time: for every
        // pair, if the receiver knows a segment's first element it must
        // know every element of that segment (value-wise).
        let replicas = run_trace(4, &trace, SyncOptions::default());
        for a in &replicas {
            for b in &replicas {
                for segment in b.segments() {
                    let first = segment[0];
                    if a.value(first.site) >= first.value && first.conflict {
                        for e in &segment {
                            prop_assert!(
                                a.value(e.site) >= e.value,
                                "segment property violated: {} knows {}:{} but not {}:{}",
                                a, first.site, first.value, e.site, e.value
                            );
                        }
                    }
                }
            }
        }
    }
}
