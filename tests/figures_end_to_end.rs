//! The paper's Figures 1–3 exercised end-to-end through the public API:
//! the scripted scenario from `optrep-workloads` plus the operation-
//! transfer reproduction of Figure 3 with real `OpReplica`s.

use optrep::core::{Causality, RotatingVector, SiteId};
use optrep::replication::OpReplica;
use optrep::workloads::FigureScenario;

#[test]
fn figure_scenario_builds_and_matches_paper() {
    let fig = FigureScenario::build(); // asserts the θ vectors internally
    assert_eq!(fig.theta(9).len(), 7);
    let (merged, report) = fig.sync_theta9_into_theta7();
    assert_eq!(report.elements_sent, 4, "C, H, G, B");
    assert_eq!(merged.to_version_vector(), fig.theta(9).to_version_vector());
}

#[test]
fn figure1_as_operation_transfer_replicas() {
    // Replay Figure 1 as an operation-transfer history with real replicas:
    // A creates; B, C, E, F, G extend; B merges (node 7); H extends and
    // merges with C's branch (node 9).
    let site = |c: char| SiteId::new(c as u32 - 'A' as u32);

    let mut a = OpReplica::new(site('A'));
    a.record("1"); // node 1

    let mut b = OpReplica::replica_of(site('B'), &a);
    b.record("2"); // node 2

    let mut c = OpReplica::replica_of(site('C'), &b);
    c.record("3"); // node 3

    let mut e = OpReplica::replica_of(site('E'), &a);
    e.record("4"); // node 4
    let mut f = OpReplica::replica_of(site('F'), &e);
    f.record("5"); // node 5
    let mut g = OpReplica::replica_of(site('G'), &f);
    g.record("6"); // node 6

    // Node 7: B synchronizes with G's line and reconciles.
    let (_, relation) = b.sync_from(&g).expect("sync 7");
    assert_eq!(relation, Causality::Concurrent);
    let node7 = b.reconcile(g.head().expect("g head"), "7");

    // Node 8: H replicates node-7 state and updates.
    let mut h = OpReplica::replica_of(site('H'), &b);
    h.record("8");

    // Node 9: H synchronizes with C's branch and reconciles.
    let (report, relation) = h.sync_from(&c).expect("sync 9");
    assert_eq!(relation, Causality::Concurrent);
    assert_eq!(report.nodes_added, 1, "only node 3 is new to H");
    let node9 = h.reconcile(c.head().expect("c head"), "9");

    assert_eq!(h.len(), 9, "all nine nodes of Figure 1");
    assert!(
        h.graph().validate().is_empty(),
        "{:?}",
        h.graph().validate()
    );
    assert_eq!(h.head(), Some(node9));
    assert!(h.graph().ancestors(node9).contains(&node7));

    // Everyone can now catch up and materialize identically.
    let (_, rel) = c.sync_from(&h).expect("c catches up");
    assert_eq!(rel, Causality::Before);
    assert_eq!(c.materialize(), h.materialize());
    assert_eq!(c.materialize().len(), 9);
}

#[test]
fn figure3_costs_through_op_replicas() {
    // Build A's and C's states from Figure 3 and measure the exchange.
    let site = |c: char| SiteId::new(c as u32 - 'A' as u32);
    let mut a = OpReplica::new(site('A'));
    a.record("1");
    let mut e = OpReplica::replica_of(site('E'), &a);
    e.record("4");
    let mut f = OpReplica::replica_of(site('F'), &e);
    f.record("5");
    let mut g = OpReplica::replica_of(site('G'), &f);
    g.record("6");

    let mut b = OpReplica::replica_of(site('B'), &a);
    b.record("2");
    let (_, rel) = b.sync_from(&g).expect("merge setup");
    assert_eq!(rel, Causality::Concurrent);
    b.reconcile(g.head().expect("head"), "7");

    // Site C holds the θ6 state (nodes 1,4,5,6); site A's role is played
    // by b (nodes 1,2,4,5,6,7).
    let mut site_c = OpReplica::replica_of(site('C'), &g);
    let (report, rel) = site_c.sync_from(&b).expect("figure 3 sync");
    assert_eq!(rel, Causality::Before);
    assert_eq!(report.nodes_added, 2, "nodes 7 and 2");
    // Here the merge's *left* parent is node 2 (B's own line), so the DFS
    // explores the unknown branch first: 7, 2, then the shared root 1,
    // after which SkipToEnd stops everything — 3 nodes, one fewer than
    // the paper's walkthrough, which visits the known branch (6…1) first.
    // The workloads::figures scenario reproduces the paper's exact order.
    assert_eq!(report.nodes_sent, 3, "missing {{7,2}} + one overlap");
    assert_eq!(site_c.materialize(), b.materialize());
}
