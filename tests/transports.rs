//! Cross-transport equivalence: the same protocol endpoints must produce
//! identical results under the lockstep driver, the timed driver with
//! adversarial latencies, the discrete-event simulator, and the threaded
//! in-memory transport — the sans-io design's core promise.

use optrep::core::graph::{CausalGraph, NodeId, SyncGReceiver, SyncGSender};
use optrep::core::sync::drive::{sync_srv, sync_srv_opts};
use optrep::core::sync::sender::VectorSender;
use optrep::core::sync::{Endpoint, SyncOptions, SyncSReceiver};
use optrep::core::{RotatingVector, SiteId, Srv};
use optrep::net::mem::run_pair;
use optrep::net::sim::{SimConfig, SimLink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn s(i: u32) -> SiteId {
    SiteId::new(i)
}

/// Builds a reconciliation-heavy pair of vectors through a legal history.
fn diverged_pair(seed: u64) -> (Srv, Srv) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Srv::new();
    for i in 0..10 {
        a.record_update(s(i));
    }
    let mut b = a.clone();
    for step in 0..30 {
        let on_a = rng.gen_bool(0.5);
        let site = s(rng.gen_range(0..10) + if on_a { 0 } else { 20 });
        if on_a {
            a.record_update(site);
        } else {
            b.record_update(site);
        }
        if step % 7 == 6 {
            // Periodic reconciliation keeps segment structure interesting.
            let relation = a.compare(&b);
            sync_srv(&mut a, &b).expect("reconcile");
            if relation.is_concurrent() {
                a.record_update(s(0));
            }
        }
    }
    (a, b)
}

#[test]
fn srv_sync_identical_across_all_transports() {
    for seed in 0..8u64 {
        let (a, b) = diverged_pair(seed);
        let relation = a.compare(&b);

        // 1. Lockstep reference.
        let mut lockstep = a.clone();
        sync_srv(&mut lockstep, &b).expect("lockstep");

        // 2. Timed driver with asymmetric latency and bandwidth pacing —
        // pipelining overruns and stale skips galore.
        for (lf, lb, bw) in [(3u64, 9u64, None), (20, 1, Some(1)), (5, 5, Some(2))] {
            let mut timed = a.clone();
            sync_srv_opts(
                &mut timed,
                &b,
                SyncOptions {
                    latency_forward: lf,
                    latency_backward: lb,
                    bandwidth: bw,
                    ..SyncOptions::default()
                },
            )
            .expect("timed");
            assert_eq!(
                timed.to_version_vector(),
                lockstep.to_version_vector(),
                "seed {seed}, latency ({lf},{lb},{bw:?})"
            );
        }

        // 3. Discrete-event simulator.
        let tx = VectorSender::new(b.clone());
        let rx = SyncSReceiver::new(a.clone(), relation);
        let mut link = SimLink::new(tx, rx, SimConfig::symmetric(777_777, Some(500)));
        link.run().expect("sim");
        let (_, rx) = link.into_parts();
        let (sim_out, _) = rx.finish();
        assert_eq!(sim_out.to_version_vector(), lockstep.to_version_vector());

        // 4. Threaded transport (real concurrency + wire round trip).
        let tx = VectorSender::new(b.clone());
        let rx = SyncSReceiver::new(a.clone(), relation);
        let (_, rx, _) = run_pair(tx, rx).expect("threads");
        let (threaded, _) = rx.finish();
        assert_eq!(threaded.to_version_vector(), lockstep.to_version_vector());
    }
}

#[test]
fn graph_sync_identical_across_transports() {
    // A branchy graph: shared chain, two divergent branches, merge.
    let mut b = CausalGraph::new();
    let n = |i: u32| NodeId::of(s(0), i);
    b.record_root(n(0));
    for i in 1..50 {
        b.record_op(n(i));
    }
    b.insert_remote(
        NodeId::of(s(1), 0),
        optrep::core::graph::Parents::one(n(10)),
    );
    b.record_merge(n(50), NodeId::of(s(1), 0));
    let mut a = CausalGraph::new();
    a.record_root(n(0));
    for i in 1..30 {
        a.record_op(n(i));
    }

    let mut lockstep = a.clone();
    let report = optrep::core::graph::sync_graph(&mut lockstep, &b).expect("lockstep");
    assert!(report.nodes_added > 0);

    let tx = SyncGSender::new(b.clone());
    let rx = SyncGReceiver::new(a.clone());
    let mut link = SimLink::new(tx, rx, SimConfig::symmetric(1_000_000, Some(200)));
    link.run().expect("sim");
    let (_, rx) = link.into_parts();
    let (sim_out, _) = rx.finish();
    assert_eq!(sim_out, lockstep);

    let tx = SyncGSender::new(b.clone());
    let rx = SyncGReceiver::new(a.clone());
    let (_, rx, stats) = run_pair(tx, rx).expect("threads");
    let (threaded, _) = rx.finish();
    assert_eq!(threaded, lockstep);
    assert!(stats.bytes_ab > 0);
}

#[test]
fn stop_and_wait_equals_pipelined_under_simulation() {
    use optrep::core::sync::FlowControl;
    let (a, b) = diverged_pair(3);
    let relation = a.compare(&b);
    let run = |flow: FlowControl| {
        let tx = VectorSender::with_flow(b.clone(), flow);
        let rx = optrep::core::sync::SyncSReceiver::with_flow(a.clone(), relation, flow);
        let mut link = SimLink::new(tx, rx, SimConfig::symmetric(123_456, None));
        let report = link.run().expect("sim");
        let (_, rx) = link.into_parts();
        let (out, _) = rx.finish();
        (out.to_version_vector(), report.duration_ns)
    };
    let (piped, piped_ns) = run(FlowControl::Pipelined);
    let (saw, saw_ns) = run(FlowControl::StopAndWait);
    assert_eq!(piped, saw, "flow control never changes the outcome");
    assert!(saw_ns >= piped_ns, "stop-and-wait is never faster");
}

#[test]
fn full_replica_session_over_sim_and_threads() {
    use bytes::Bytes;
    use optrep::replication::{apply_pull, PullClient, PullServer};

    let (a, b) = diverged_pair(11);
    let relation = a.compare(&b);
    assert!(relation.is_concurrent() || relation == optrep::core::Causality::Before);
    let server_state = Bytes::from_static(b"server payload");

    // Reference: lockstep by hand.
    let run_lockstep = || {
        let mut client = PullClient::new(a.clone());
        let mut server = PullServer::new(b.clone(), server_state.clone());
        loop {
            let mut progress = false;
            while let Some(m) = client.poll_send() {
                server.on_receive(m).unwrap();
                progress = true;
            }
            if let Some(m) = server.poll_send() {
                client.on_receive(m).unwrap();
                progress = true;
            }
            if client.is_done() && server.is_done() {
                break;
            }
            assert!(progress, "lockstep session stalled");
        }
        client.finish()
    };
    let reference = run_lockstep();

    // Simulator with bandwidth pacing and asymmetric latency.
    let client = PullClient::new(a.clone());
    let server = PullServer::new(b.clone(), server_state.clone());
    let mut link = SimLink::new(client, server, SimConfig::symmetric(2_000_000, Some(2_000)));
    let report = link.run().expect("sim session");
    let (client, _) = link.into_parts();
    let sim_outcome = client.finish();
    assert_eq!(sim_outcome.relation, reference.relation);
    assert_eq!(sim_outcome.payload, reference.payload);
    assert_eq!(
        sim_outcome.vector.to_version_vector(),
        reference.vector.to_version_vector()
    );
    assert!(report.stats.bytes_ab > 0 && report.stats.bytes_ba > 0);

    // Threads with real wire round trips.
    let client = PullClient::new(a.clone());
    let server = PullServer::new(b.clone(), server_state.clone());
    let (client, _, _) = run_pair(client, server).expect("threaded session");
    let threaded = client.finish();
    assert_eq!(threaded.relation, reference.relation);
    assert_eq!(threaded.payload, reference.payload);
    assert_eq!(
        threaded.vector.to_version_vector(),
        reference.vector.to_version_vector()
    );

    // Applying the pull merges payloads on reconciliation.
    let ours = Bytes::from_static(b"our payload");
    let applied = apply_pull(&reference, &ours, |mine, theirs| {
        let mut v = mine.to_vec();
        v.extend_from_slice(theirs);
        Bytes::from(v)
    });
    if reference.relation.is_concurrent() {
        assert_eq!(&applied[..], b"our payloadserver payload");
    } else {
        assert_eq!(applied, server_state);
    }
}
