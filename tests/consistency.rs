//! Eventual consistency across the whole stack: clusters of sites running
//! randomized traces under every metadata scheme must converge to
//! identical replicas (§2.1), and all schemes must agree on the final
//! state for the same trace.

use optrep::core::{Crv, SiteId, Srv, VersionVector};
use optrep::replication::{
    Cluster, ContactOptions, ObjectId, ReplicaMeta, TokenSet, UnionReconciler,
};
use optrep::workloads::trace::{replay, Topology, TraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn obj() -> ObjectId {
    ObjectId::new(0)
}

/// Replays a trace, then settles, and returns the converged payload.
fn converged_payload<M: ReplicaMeta>(cfg: &TraceConfig) -> TokenSet {
    let events = cfg.generate();
    let (mut cluster, _) = replay::<M>(cfg.sites, &events).expect("replay");
    cluster.settle(obj()).expect("settle");
    assert!(cluster.is_consistent(obj()), "cluster must converge");
    cluster
        .site(SiteId::new(0))
        .replica(obj())
        .expect("site 0 hosts the object")
        .payload
        .clone()
}

#[test]
fn all_schemes_converge_to_the_same_state() {
    for seed in [1u64, 7, 42] {
        for topology in [Topology::Random, Topology::Ring, Topology::Star] {
            let cfg = TraceConfig {
                sites: 8,
                events: 600,
                update_fraction: 0.35,
                topology,
                seed,
            };
            let srv = converged_payload::<Srv>(&cfg);
            let crv = converged_payload::<Crv>(&cfg);
            let full = converged_payload::<VersionVector>(&cfg);
            assert_eq!(srv, crv, "seed {seed}, {topology:?}");
            assert_eq!(srv, full, "seed {seed}, {topology:?}");
            assert!(!srv.is_empty());
        }
    }
}

#[test]
fn payload_reflects_every_applied_update() {
    // The union payload must contain exactly one token per applied update
    // plus the initial token — nothing lost, nothing invented.
    let cfg = TraceConfig {
        sites: 6,
        events: 500,
        update_fraction: 0.4,
        seed: 99,
        ..TraceConfig::default()
    };
    let events = cfg.generate();
    let (mut cluster, stats) = replay::<Srv>(cfg.sites, &events).expect("replay");
    cluster.settle(obj()).expect("settle");
    let payload = &cluster
        .site(SiteId::new(0))
        .replica(obj())
        .expect("replica")
        .payload;
    assert_eq!(payload.len() as u64, stats.applied_updates + 1);
}

#[test]
fn convergence_under_sustained_conflict_storm() {
    // Every site updates every round before gossiping: maximal conflict
    // pressure. The cluster must still settle to a single state.
    let mut rng = StdRng::seed_from_u64(5);
    let mut cluster: Cluster<Srv, TokenSet, UnionReconciler> = Cluster::new(6, UnionReconciler);
    cluster
        .site_mut(SiteId::new(0))
        .create_object(obj(), TokenSet::singleton("init"));
    // Give everyone a replica first.
    cluster.settle(obj()).expect("initial settle");
    for round in 0..30 {
        for i in 0..6 {
            let site = SiteId::new(i);
            cluster.site_mut(site).update(obj(), |p| {
                p.insert(format!("{site}:{round}"));
            });
        }
        cluster
            .round_with(&mut rng, &ContactOptions::direct().with_object(obj()))
            .expect("gossip");
    }
    cluster.settle(obj()).expect("final settle");
    assert!(cluster.is_consistent(obj()));
    let payload = &cluster
        .site(SiteId::new(0))
        .replica(obj())
        .expect("replica")
        .payload;
    assert_eq!(payload.len(), 1 + 6 * 30, "all updates survived the storm");
    assert!(cluster.stats().reconciliations > 0);
}

#[test]
fn brv_cluster_converges_without_conflicts() {
    // A single-writer workload never conflicts, so even BRV (manual
    // resolution only) reaches eventual consistency.
    let mut rng = StdRng::seed_from_u64(3);
    let mut cluster: Cluster<optrep::core::Brv, TokenSet, UnionReconciler> =
        Cluster::new(8, UnionReconciler);
    cluster
        .site_mut(SiteId::new(0))
        .create_object(obj(), TokenSet::singleton("init"));
    for round in 0..20 {
        cluster.site_mut(SiteId::new(0)).update(obj(), |p| {
            p.insert(format!("w{round}"));
        });
        cluster
            .round_with(&mut rng, &ContactOptions::direct().with_object(obj()))
            .expect("gossip");
    }
    cluster.settle(obj()).expect("settle");
    assert!(cluster.is_consistent(obj()));
    assert_eq!(cluster.stats().conflicts, 0);
}

#[test]
fn brv_conflicts_are_excluded_and_manually_resolvable() {
    let mut cluster: Cluster<optrep::core::Brv, TokenSet, UnionReconciler> =
        Cluster::new(2, UnionReconciler);
    let (a, b) = (SiteId::new(0), SiteId::new(1));
    cluster
        .site_mut(a)
        .create_object(obj(), TokenSet::singleton("init"));
    cluster.sync(b, a, obj()).expect("replicate");
    cluster.site_mut(a).update(obj(), |p| {
        p.insert("A");
    });
    cluster.site_mut(b).update(obj(), |p| {
        p.insert("B");
    });
    cluster.sync(b, a, obj()).expect("conflicting sync");
    assert_eq!(cluster.stats().conflicts, 1);
    assert_eq!(cluster.site(b).conflicts().len(), 1);
    // Manual resolution: b adopts a's replica wholesale.
    let winner = cluster.site(a).replica(obj()).expect("replica").clone();
    cluster.site_mut(b).resolve_adopt(obj(), &winner);
    assert!(cluster.site(b).conflicts().is_empty());
    assert!(cluster.is_consistent(obj()));
}
