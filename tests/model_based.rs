//! Model-based property tests: the rotating vectors are *implementations*
//! of version vectors, so after any legal trace of operations their
//! values, comparisons and synchronization results must coincide with a
//! plain [`VersionVector`] reference model maintained side by side.
//!
//! A "legal trace" follows the §2.1 system model: each replica is only
//! updated by its hosting site, and metadata changes only through local
//! updates, sync protocols, and the post-reconciliation increment.

use optrep::core::sync::drive::{sync_brv, sync_crv, sync_srv};
use optrep::core::sync::SyncReport;
use optrep::core::{
    Brv, Causality, Crv, Error, Result, RotatingVector, SiteId, Srv, VersionVector,
};
use proptest::prelude::*;

/// One step of a legal multi-replica trace.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Site `r` updates its replica.
    Update { r: usize },
    /// Replica `dst` synchronizes from replica `src` (followed by the
    /// Parker §C increment if they were concurrent).
    Sync { dst: usize, src: usize },
}

fn steps(replicas: usize, len: usize) -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (0..replicas).prop_map(|r| Step::Update { r }),
        (0..replicas, 0..replicas - 1).prop_map(move |(dst, mut src)| {
            if src >= dst {
                src += 1;
            }
            Step::Sync { dst, src }
        }),
    ];
    proptest::collection::vec(step, 1..len)
}

/// Runs a trace over `k` replicas for a rotating type, mirroring every
/// step on plain version vectors, and checks the invariants at each step.
fn check_against_model<V, FSync>(k: usize, trace: &[Step], sync: FSync) -> Result<()>
where
    V: RotatingVector + Default,
    FSync: Fn(&mut V, &V) -> Result<SyncReport>,
{
    let mut real: Vec<V> = (0..k).map(|_| V::default()).collect();
    let mut model: Vec<VersionVector> = vec![VersionVector::new(); k];
    for (i, step) in trace.iter().enumerate() {
        match *step {
            Step::Update { r } => {
                real[r].record_update(SiteId::new(r as u32));
                model[r].increment(SiteId::new(r as u32));
            }
            Step::Sync { dst, src } => {
                let relation = real[dst].compare(&real[src]);
                let reference = model[dst].compare(&model[src]);
                assert_eq!(relation, reference, "step {i}: O(1) compare vs model");
                let b = real[src].clone();
                sync(&mut real[dst], &b)?;
                let m = model[src].clone();
                model[dst].merge(&m);
                if relation.is_concurrent() {
                    // Parker §C: reconciliation ends with a local update.
                    real[dst].record_update(SiteId::new(dst as u32));
                    model[dst].increment(SiteId::new(dst as u32));
                }
            }
        }
        for r in 0..k {
            assert_eq!(
                real[r].to_version_vector(),
                model[r],
                "step {i}: replica {r} diverged from the model"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crv_matches_version_vector_model(trace in steps(4, 60)) {
        check_against_model::<Crv, _>(4, &trace, sync_crv).unwrap();
    }

    #[test]
    fn srv_matches_version_vector_model(trace in steps(4, 60)) {
        check_against_model::<Srv, _>(4, &trace, sync_srv).unwrap();
    }

    #[test]
    fn srv_matches_model_many_replicas(trace in steps(8, 120)) {
        check_against_model::<Srv, _>(8, &trace, sync_srv).unwrap();
    }

    #[test]
    fn brv_matches_model_until_first_conflict(trace in steps(4, 60)) {
        // BRV cannot reconcile: run the same trace but stop at the first
        // concurrent sync (which sync_brv correctly refuses).
        let result = check_against_model::<Brv, _>(4, &trace, sync_brv);
        if let Err(e) = result {
            prop_assert_eq!(e, Error::ConcurrentVectors);
        }
    }

    #[test]
    fn sync_is_elementwise_max(trace in steps(3, 40)) {
        // Endpoint check, independent of the model bookkeeping: any two
        // replicas produced by a legal trace synchronize to max(a, b).
        let mut real: Vec<Srv> = (0..3).map(|_| Srv::default()).collect();
        for step in &trace {
            match *step {
                Step::Update { r } => {
                    real[r].record_update(SiteId::new(r as u32));
                }
                Step::Sync { dst, src } => {
                    let relation = real[dst].compare(&real[src]);
                    let b = real[src].clone();
                    sync_srv(&mut real[dst], &b).unwrap();
                    if relation.is_concurrent() {
                        real[dst].record_update(SiteId::new(dst as u32));
                    }
                }
            }
        }
        let mut a = real[0].clone();
        let b = real[1].clone();
        let mut expected = a.to_version_vector();
        expected.merge(&b.to_version_vector());
        sync_srv(&mut a, &b).unwrap();
        prop_assert_eq!(a.to_version_vector(), expected);
    }
}

#[test]
fn post_reconciliation_dominance() {
    // After reconciliation + increment, the receiver strictly dominates
    // the sender — the property that drives eventual consistency.
    let mut a = Srv::new();
    let mut b = Srv::new();
    a.record_update(SiteId::new(0));
    b.record_update(SiteId::new(1));
    assert_eq!(a.compare(&b), Causality::Concurrent);
    sync_srv(&mut a, &b).unwrap();
    a.record_update(SiteId::new(0));
    assert_eq!(b.compare(&a), Causality::Before);
    assert_eq!(a.compare(&b), Causality::After);
}
