//! Acceptance test for the multiplexed contact engine: batching all
//! first-element comparisons of a many-object anti-entropy pull into one
//! framed connection amortizes the round trip over every object, so a
//! mostly-clean pull finishes in a constant number of round trips where
//! the per-object approach pays one connection (≥ 1 rtt) per object —
//! while the per-object `SYNCS` accounting (Δ/Γ/γ) stays byte-identical
//! to a dedicated single-object session.

use bytes::Bytes;
use optrep::core::sync::Endpoint;
use optrep::core::{RotatingVector, SiteId, Srv};
use optrep::net::mem::run_pair_stream;
use optrep::net::sim::{SimConfig, SimLink};
use optrep::replication::{BatchPullClient, BatchPullServer, PullClient, PullServer};

const OBJECTS: usize = 256;
const DIRTY: usize = 7;

fn s(i: u32) -> SiteId {
    SiteId::new(i)
}

fn name(i: usize) -> Bytes {
    Bytes::from(format!("obj{i:04}").into_bytes())
}

/// Client-side `(name, vector)` and server-side `(name, vector, payload)`
/// object sets for one contact.
type Objects = (Vec<(Bytes, Srv)>, Vec<(Bytes, Srv, Bytes)>);

/// Builds the scenario: 256 shared objects, all replicas identical except
/// one where the server has an extra update the client must pull.
fn scenario() -> Objects {
    let mut client_objects = Vec::with_capacity(OBJECTS);
    let mut server_objects = Vec::with_capacity(OBJECTS);
    for i in 0..OBJECTS {
        let mut v = Srv::new();
        for u in 0..(3 + i % 5) {
            v.record_update(s((u % 4) as u32));
        }
        client_objects.push((name(i), v.clone()));
        let mut sv = v;
        if i == DIRTY {
            sv.record_update(s(9));
        }
        server_objects.push((name(i), sv, Bytes::from(format!("state-{i}").into_bytes())));
    }
    (client_objects, server_objects)
}

/// A 5 ms symmetric link (10 ms rtt), infinite bandwidth.
fn cfg() -> SimConfig {
    SimConfig::symmetric(5_000_000, None)
}

#[test]
fn batched_pull_finishes_in_constant_round_trips() {
    let (client_objects, server_objects) = scenario();
    let client = BatchPullClient::new(client_objects);
    let server = BatchPullServer::new(server_objects);
    let mut link = SimLink::new(client, server, cfg());
    let report = link.run().expect("batched contact over sim link");

    // The whole 256-object pull — comparison, one dirty `SYNCS`, payload
    // transfer — rides three blocking exchanges at most.
    assert!(
        report.duration_ns <= 3 * cfg().rtt(),
        "batched pull took {} ns, expected ≤ 3 × rtt = {} ns",
        report.duration_ns,
        3 * cfg().rtt()
    );

    // Every stream settled; only the dirty one shipped state.
    let (client, _) = link.into_parts();
    assert!(client.is_done());
    let results = client.finish();
    assert_eq!(results.len(), OBJECTS);
    let transferred: Vec<_> = results
        .iter()
        .filter(|r| r.outcome.as_ref().is_some_and(|o| o.payload.is_some()))
        .collect();
    assert_eq!(transferred.len(), 1, "only the dirty object ships state");
    assert_eq!(transferred[0].name, name(DIRTY));
}

#[test]
fn per_object_sessions_pay_a_round_trip_each() {
    let (client_objects, server_objects) = scenario();
    let mut total_ns = 0u64;
    for ((_, cv), (_, sv, payload)) in client_objects.into_iter().zip(server_objects) {
        let client = PullClient::new(cv);
        let server = PullServer::new(sv, payload);
        let mut link = SimLink::new(client, server, cfg());
        let report = link.run().expect("per-object session over sim link");
        total_ns += report.duration_ns;
    }
    // One connection per object: at least the comparison round trip each.
    assert!(
        total_ns >= OBJECTS as u64 * cfg().rtt(),
        "per-object total {} ns, expected ≥ 256 × rtt = {} ns",
        total_ns,
        OBJECTS as u64 * cfg().rtt()
    );
}

#[test]
fn dirty_stream_accounting_matches_dedicated_session() {
    let (client_objects, server_objects) = scenario();
    let (_, dirty_client) = client_objects[DIRTY].clone();
    let (_, dirty_server, dirty_payload) = server_objects[DIRTY].clone();

    // Dedicated single-object session over the same link.
    let client = PullClient::new(dirty_client);
    let server = PullServer::new(dirty_server, dirty_payload);
    let mut link = SimLink::new(client, server, cfg());
    link.run().expect("dedicated session");
    let (client, _) = link.into_parts();
    let dedicated = client.finish();

    // The same object as one stream among 256 in a batched contact.
    let client = BatchPullClient::new(client_objects);
    let server = BatchPullServer::new(server_objects);
    let mut link = SimLink::new(client, server, cfg());
    link.run().expect("batched contact");
    let (client, _) = link.into_parts();
    let muxed = client
        .finish()
        .into_iter()
        .find(|r| r.name == name(DIRTY))
        .expect("dirty stream present")
        .outcome
        .expect("dirty stream ran a session");

    assert_eq!(muxed.relation, dedicated.relation);
    assert_eq!(muxed.payload, dedicated.payload);
    assert_eq!(
        muxed.vector.to_version_vector(),
        dedicated.vector.to_version_vector()
    );
    assert_eq!(muxed.stats.delta, dedicated.stats.delta, "Δ unchanged");
    assert_eq!(muxed.stats.gamma, dedicated.stats.gamma, "Γ unchanged");
    assert_eq!(muxed.stats.skips, dedicated.stats.skips, "γ unchanged");
}

#[test]
fn batched_contact_survives_a_byte_stream_transport() {
    // The same contact over the TCP-like chunked transport: frames split
    // across 7-byte reads and reassembled by the frame decoder.
    let (client_objects, server_objects) = scenario();
    let client = BatchPullClient::new(client_objects);
    let server = BatchPullServer::new(server_objects);
    let (client, _, stats) = run_pair_stream(client, server, 7).expect("contact over byte stream");
    let results = client.finish();
    assert_eq!(results.len(), OBJECTS);
    let shipped = results
        .iter()
        .filter(|r| r.outcome.as_ref().is_some_and(|o| o.payload.is_some()))
        .count();
    assert_eq!(shipped, 1);
    assert!(stats.bytes_ab > 0 && stats.bytes_ba > 0);
}
