//! A distributed revision-control workflow (Mercurial/Pastwatch-style):
//! operation transfer with causal graphs and `SYNCG` (§6).
//!
//! Two developers fork a repository, commit independently, merge, and
//! keep pulling from each other. Every pull ships only the missing
//! commits plus one overlap node per branch; the example prints the
//! transfer costs against a full-history transfer and the final merged
//! log.
//!
//! ```text
//! cargo run --example revision_control
//! ```

use optrep::core::{Causality, SiteId};
use optrep::replication::OpReplica;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alice_id = SiteId::new(0);
    let bob_id = SiteId::new(1);

    // Alice creates the repository and makes the first commits.
    let mut alice = OpReplica::new(alice_id);
    alice.record("commit: initial import");
    alice.record("commit: add build script");
    // Bob clones it.
    let mut bob = OpReplica::replica_of(bob_id, &alice);
    println!("bob cloned {} commits from alice\n", bob.len());

    // Divergent work.
    alice.record("commit: alice refactors parser");
    alice.record("commit: alice adds tests");
    bob.record("commit: bob fixes typo");

    // Bob pulls: histories are concurrent, so after the graph sync he
    // records an explicit merge commit (two-parent node).
    let (report, relation) = bob.sync_from(&alice)?;
    assert_eq!(relation, Causality::Concurrent);
    println!(
        "bob pull #1: {:?} — {} commits fetched, {} bytes ({} nodes on the wire)",
        relation, report.nodes_added, report.transfer.bytes_forward, report.nodes_sent
    );
    let merge = bob.reconcile(alice.head().expect("alice head"), "merge: alice ← bob");
    println!("bob merges: {merge}\n");

    // Alice pulls Bob's merge: a fast-forward.
    let (report, relation) = alice.sync_from(&bob)?;
    assert_eq!(relation, Causality::Before);
    println!(
        "alice pull: {:?} — {} commits fetched, {} bytes",
        relation, report.nodes_added, report.transfer.bytes_forward
    );
    assert_eq!(alice.head(), bob.head());

    // A long stretch of independent commits, then one more exchange.
    for i in 0..40 {
        alice.record(format!("commit: alice work {i}"));
    }
    bob.record("commit: bob hotfix");
    let (incremental, _) = bob.sync_from(&alice)?;
    let merge = bob.reconcile(alice.head().expect("alice head"), "merge: big batch");
    let (_, rel) = alice.sync_from(&bob)?;
    assert_eq!(rel, Causality::Before);
    assert_eq!(alice.head(), Some(merge));

    // Compare against shipping the whole history.
    let mut fresh = OpReplica::new(SiteId::new(2));
    let (full, _) = fresh.sync_from_full(&alice)?;
    println!(
        "\nbob pull #2 (incremental SYNCG): {} bytes for {} new commits",
        incremental.transfer.bytes_forward, incremental.nodes_added
    );
    println!(
        "cloning the whole history instead: {} bytes for {} commits",
        full.transfer.bytes_forward, full.nodes_sent
    );

    // The merged log materializes identically everywhere.
    assert_eq!(alice.materialize(), bob.materialize());
    println!(
        "\nfinal log ({} commits, identical on both sides); last entries:",
        alice.len()
    );
    for op in alice.materialize().iter().rev().take(4).rev() {
        println!("  {}", String::from_utf8_lossy(op));
    }
    Ok(())
}
