//! Quickstart: three sites replicate one object with skip rotating
//! vectors, conflict, reconcile, and converge — printing the metadata
//! bytes each exchange cost compared with the traditional full-vector
//! transfer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use optrep::core::sync::SyncOptions;
use optrep::core::{Causality, RotatingVector, SiteId};
use optrep::replication::{sync_replica, ObjectId, Site, TokenSet, UnionReconciler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = ObjectId::new(1);
    let opts = SyncOptions::default();

    // Three sites; A creates the object.
    let mut a: Site<optrep::core::Srv, TokenSet> = Site::new(SiteId::new(0));
    let mut b: Site<optrep::core::Srv, TokenSet> = Site::new(SiteId::new(1));
    let mut c: Site<optrep::core::Srv, TokenSet> = Site::new(SiteId::new(2));
    a.create_object(object, TokenSet::singleton("created-on-A"));

    // Replicate to B and C (initial replication ships the whole state).
    let r = sync_replica(&mut b, &a, object, &UnionReconciler, opts)?;
    println!(
        "A→B initial replication: {:?}, {} payload bytes",
        r.outcome, r.payload_bytes
    );
    let r = sync_replica(&mut c, &a, object, &UnionReconciler, opts)?;
    println!(
        "A→C initial replication: {:?}, {} payload bytes",
        r.outcome, r.payload_bytes
    );

    // A and B update concurrently: a syntactic conflict.
    a.update(object, |p| {
        p.insert("edit-from-A");
    });
    b.update(object, |p| {
        p.insert("edit-from-B");
    });
    let va = &a.replica(object).unwrap().meta;
    let vb = &b.replica(object).unwrap().meta;
    assert_eq!(va.compare(vb), Causality::Concurrent);
    println!("\nA's vector: {va}");
    println!("B's vector: {vb}");
    println!(
        "COMPARE says: {} (detected from the first elements alone)",
        va.compare(vb)
    );

    // B pulls from A: automatic reconciliation (union merge + Parker §C
    // increment), costing only the differing elements.
    let r = sync_replica(&mut b, &a, object, &UnionReconciler, opts)?;
    let meta = r.meta.expect("protocol ran");
    println!(
        "\nB⇐A reconcile: {:?}; metadata bytes {}, elements sent {}, |Δ|={}",
        r.outcome,
        meta.total_bytes(),
        meta.elements_sent,
        meta.receiver.delta,
    );
    println!("B's payload now: {}", b.replica(object).unwrap().payload);

    // C catches up from B with a plain fast-forward.
    let r = sync_replica(&mut c, &b, object, &UnionReconciler, opts)?;
    let meta = r.meta.expect("protocol ran");
    println!(
        "C⇐B fast-forward: {:?}; metadata bytes {} (a full vector would ship {} elements)",
        r.outcome,
        meta.total_bytes(),
        b.replica(object).unwrap().meta.len(),
    );
    // And A picks up the reconciliation result.
    sync_replica(&mut a, &b, object, &UnionReconciler, opts)?;

    let pa = &a.replica(object).unwrap().payload;
    let pc = &c.replica(object).unwrap().payload;
    assert_eq!(pa, pc, "all replicas converged");
    println!("\nconverged payload: {pa}");
    Ok(())
}
