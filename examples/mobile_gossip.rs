//! A delay-tolerant mobile network: power-constrained devices share a
//! participatory data store through opportunistic pairwise contacts (the
//! paper's DTN motivation, §1).
//!
//! 200 devices relay an incident log. New readings are recorded by the
//! device currently carrying the freshest replica (the "data mule"), so
//! writes are causally serialized and conflicts are rare — the regime
//! optimistic replication assumes. Over time most devices have appended
//! at least once, so the version vector spans many sites; the traditional
//! exchange then ships the whole O(n) vector on every contact, while SRV
//! ships only the few elements that changed.
//!
//! ```text
//! cargo run --example mobile_gossip
//! ```

use optrep::core::{SiteId, Srv, VersionVector};
use optrep::replication::{Cluster, ObjectId, ReplicaMeta, TokenSet, UnionReconciler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DEVICES: u32 = 200;
const CONTACTS: u32 = 8000;
/// Probability that a contact involving the freshest replica logs a new
/// reading.
const UPDATE_PROB: f64 = 0.6;

fn run_network<M: ReplicaMeta>() -> (optrep::replication::ClusterStats, usize) {
    let mut rng = StdRng::seed_from_u64(7);
    let object = ObjectId::new(0);
    let mut cluster: Cluster<M, TokenSet, UnionReconciler> = Cluster::new(DEVICES, UnionReconciler);
    cluster
        .site_mut(SiteId::new(0))
        .create_object(object, TokenSet::singleton("incident-log"));

    // The device carrying the freshest replica.
    let mut mule = SiteId::new(0);
    let mut reading = 0u64;
    let mut writers = std::collections::BTreeSet::new();
    writers.insert(mule);
    for _ in 0..CONTACTS {
        // Opportunistic contact between two random devices: both pull.
        // The mule is the most active device (it is ferrying the data),
        // so it shows up in a quarter of all contacts.
        let x = if rng.gen_bool(0.25) {
            mule.index()
        } else {
            rng.gen_range(0..DEVICES)
        };
        let mut y = rng.gen_range(0..DEVICES - 1);
        if y >= x {
            y += 1;
        }
        let (x, y) = (SiteId::new(x), SiteId::new(y));
        cluster.sync(x, y, object).expect("contact sync");
        cluster.sync(y, x, object).expect("contact sync");

        // If the mule is part of this contact, both parties now hold the
        // freshest replica; one of them may log the next reading and
        // becomes the new mule. Writes are thus causally serialized —
        // conflicts stay rare, as §1 assumes.
        if (mule == x || mule == y) && rng.gen_bool(UPDATE_PROB) {
            let dev = if rng.gen_bool(0.5) { x } else { y };
            reading += 1;
            let entry = format!("{dev}:reading{reading}");
            cluster.site_mut(dev).update(object, |p| {
                p.insert(entry);
            });
            mule = dev;
            writers.insert(dev);
        }
    }
    (cluster.stats(), writers.len())
}

fn main() {
    println!("mobile DTN store: {DEVICES} devices, {CONTACTS} opportunistic contacts\n");
    let (srv, writers) = run_network::<Srv>();
    let (full, _) = run_network::<VersionVector>();

    println!("distinct writer devices (vector size n grows to this): {writers}\n");
    println!("scheme  meta bytes   elements sent  reconciles  fast-forwards");
    println!(
        "SRV     {:<11}  {:<13}  {:<10}  {}",
        srv.meta_bytes + srv.compare_bytes,
        srv.meta_elements,
        srv.reconciliations,
        srv.fast_forwards
    );
    println!(
        "FULL    {:<11}  {:<13}  {:<10}  {}",
        full.meta_bytes + full.compare_bytes,
        full.meta_elements,
        full.reconciliations,
        full.fast_forwards
    );
    let srv_total = srv.meta_bytes + srv.compare_bytes;
    let full_total = full.meta_bytes + full.compare_bytes;
    println!(
        "\nconcurrency-control radio traffic: SRV {srv_total} B vs FULL {full_total} B — {:.1}× less",
        full_total as f64 / srv_total as f64
    );
    println!("(FULL ships the whole {writers}-element vector on every contact; SRV ships |Δ|+1)");
    assert!(
        srv_total * 2 < full_total,
        "SRV must clearly beat FULL here"
    );
}
