//! Network pipelining on a simulated high-latency link (§3.1).
//!
//! A sender streams k vector elements over a 40 ms-RTT link. With
//! stop-and-wait, every element waits a round trip; with pipelining, the
//! whole exchange takes about one round trip, saving (k−1)·rtt — at the
//! cost of at most β = bandwidth × rtt bytes streamed after the
//! receiver's HALT is already in flight.
//!
//! ```text
//! cargo run --example pipelining
//! ```

use optrep::core::rotating::{Brv, RotatingVector};
use optrep::core::sync::sender::VectorSender;
use optrep::core::sync::{FlowControl, SyncBReceiver};
use optrep::core::SiteId;
use optrep::net::sim::{SimConfig, SimLink, SimReport};

fn run(k: u32, flow: FlowControl, cfg: SimConfig, receiver_knows_all: bool) -> SimReport {
    let mut b = Brv::new();
    for i in 0..k {
        b.record_update(SiteId::new(i));
    }
    let a = if receiver_knows_all {
        b.clone()
    } else {
        Brv::new()
    };
    let relation = a.compare(&b);
    let tx = VectorSender::with_flow(b, flow);
    let rx = SyncBReceiver::with_flow(a, relation, flow).expect("comparable");
    let mut link = SimLink::new(tx, rx, cfg);
    link.run().expect("simulation")
}

fn main() {
    let rtt_ms = 40u64;
    let cfg = SimConfig::symmetric(rtt_ms / 2 * 1_000_000, None);
    println!("link: {rtt_ms} ms RTT, unlimited bandwidth\n");
    println!("k      pipelined    stop-and-wait   saving       (k-1)·rtt");
    for k in [8u32, 64, 512] {
        let piped = run(k, FlowControl::Pipelined, cfg, false);
        let saw = run(k, FlowControl::StopAndWait, cfg, false);
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "{k:<5}  {:>8.1} ms  {:>12.1} ms  {:>8.1} ms  {:>8.1} ms",
            ms(piped.duration_ns),
            ms(saw.duration_ns),
            ms(saw.duration_ns - piped.duration_ns),
            ((k - 1) as f64) * rtt_ms as f64,
        );
    }

    // The price of pipelining: overrun bytes while the NAK is in flight.
    let bw = 50_000u64; // 50 kB/s
    let cfg = SimConfig::symmetric(rtt_ms / 2 * 1_000_000, Some(bw));
    let report = run(2048, FlowControl::Pipelined, cfg, true);
    let beta = bw * rtt_ms / 1000;
    println!(
        "\nwith a {bw} B/s line and an up-to-date receiver: {} excess bytes after the NAK",
        report.excess_bytes
    );
    println!("bounded by β = bandwidth × rtt = {beta} bytes (§3.1)");
    assert!(report.excess_bytes as u64 <= beta + 16);
}
