//! The replicated key-value store in action: two laptops and a phone
//! sharing a settings store, working offline, syncing opportunistically,
//! and resolving concurrent edits deterministically.
//!
//! ```text
//! cargo run --example kv_store
//! ```

use optrep::core::SiteId;
use optrep::kv::KvStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut laptop = KvStore::new(SiteId::new(0));
    let mut phone = KvStore::new(SiteId::new(1));
    let mut tablet = KvStore::new(SiteId::new(2));

    // Work starts on the laptop.
    laptop.put("theme", "dark");
    laptop.put("font-size", "14");
    laptop.put("scratch", "temp note");

    // The phone pulls everything on first sync.
    let report = phone.sync(&laptop).run()?;
    println!(
        "phone first sync: {} keys created, {} meta bytes, {} value bytes",
        report.keys_created, report.meta_bytes, report.value_bytes
    );

    // Offline edits: both devices change the theme (a genuine conflict),
    // the laptop also deletes a key and bumps the font size.
    laptop.delete("scratch");
    laptop.put("font-size", "16");
    laptop.put("theme", "solarized");
    phone.put("theme", "light");

    // Opportunistic sync both ways.
    let report = phone.sync(&laptop).run()?;
    println!(
        "phone ⇐ laptop: {} fast-forwarded, {} reconciled, {} unchanged",
        report.keys_fast_forwarded, report.keys_reconciled, report.keys_unchanged
    );
    let report = laptop.sync(&phone).run()?;
    println!(
        "laptop ⇐ phone: {} fast-forwarded, {} reconciled, {} unchanged",
        report.keys_fast_forwarded, report.keys_reconciled, report.keys_unchanged
    );
    assert!(laptop.consistent_with(&phone));

    // A tablet joins later and catches up in one pull.
    tablet.sync(&laptop).run()?;
    assert!(tablet.consistent_with(&laptop));

    println!("\nconverged settings:");
    for key in tablet.keys() {
        println!(
            "  {key} = {}",
            String::from_utf8_lossy(tablet.get(key).expect("live key"))
        );
    }
    println!("(scratch was deleted; its tombstone is tracked for replication)");
    assert_eq!(tablet.get("scratch"), None);

    // Durable snapshot round-trip: what a restart would load.
    let mut snapshot = tablet.encode_snapshot();
    let restored = KvStore::decode_snapshot(&mut snapshot)?;
    assert!(restored.consistent_with(&tablet));
    println!(
        "\nsnapshot round-trip OK ({} tracked entries)",
        restored.tracked_entries()
    );
    Ok(())
}
