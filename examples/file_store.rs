//! A replicated file store: many objects (files) spread over a cluster of
//! sites, updated mostly in causal sequence with occasional genuine
//! conflicts — the Coda/Ficus-style scenario of the paper's introduction.
//!
//! 24 sites share five "files". Most edits happen where the freshest copy
//! lives (people edit the newest version they can see); now and then a
//! disconnected site edits a stale copy, producing a real concurrent
//! update that automatic reconciliation merges. The run reports the
//! total concurrency-control traffic under SRV vs the full-vector
//! baseline, and shows the converged content.
//!
//! ```text
//! cargo run --example file_store
//! ```

use optrep::core::{Causality, SiteId, Srv, VersionVector};
use optrep::replication::{
    Cluster, ContactOptions, ContactScheme, ObjectId, TokenSet, UnionReconciler,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SITES: u32 = 24;
const FILES: u64 = 5;
const ROUNDS: u32 = 60;
/// Probability that an edit lands on a random (possibly stale) replica
/// instead of the freshest one — the source of genuine conflicts.
const STALE_EDIT_PROB: f64 = 0.08;

fn run_store<M: ContactScheme<TokenSet> + Send>(
    seed: u64,
) -> Cluster<M, TokenSet, UnionReconciler> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cluster: Cluster<M, TokenSet, UnionReconciler> = Cluster::new(SITES, UnionReconciler);

    // Each file is created on a different site, which starts as its
    // freshest holder.
    let mut freshest: Vec<SiteId> = Vec::new();
    for f in 0..FILES {
        let origin = SiteId::new((f % u64::from(SITES)) as u32);
        cluster.site_mut(origin).create_object(
            ObjectId::new(f),
            TokenSet::singleton(format!("file{f}:header")),
        );
        freshest.push(origin);
    }

    let mut line = 0u64;
    for round in 0..ROUNDS {
        // A couple of edits per round.
        for _ in 0..2 {
            let f = rng.gen_range(0..FILES);
            let file = ObjectId::new(f);
            let site = if rng.gen_bool(STALE_EDIT_PROB) {
                // A disconnected user edits whatever copy they have.
                SiteId::new(rng.gen_range(0..SITES))
            } else {
                freshest[f as usize]
            };
            if cluster.site(site).replica(file).is_some() {
                line += 1;
                let text = format!("file{f}:line{line} (by {site}, round {round})");
                cluster.site_mut(site).update(file, |p| {
                    p.insert(text);
                });
                if site == freshest[f as usize] || round == 0 {
                    freshest[f as usize] = site;
                }
            }
        }
        // One gossip round per file, then track where the freshest copy
        // travelled (any site now dominating the old holder).
        for f in 0..FILES {
            let file = ObjectId::new(f);
            cluster
                .round_with(&mut rng, &ContactOptions::direct().with_object(file))
                .expect("gossip");
            // Nightly sweep through the main server: reconciliation
            // results propagate promptly, stopping version-vector churn
            // (each Parker §C increment is itself a concurrent update that
            // would otherwise seed the next round's conflicts).
            if round % 5 == 4 {
                cluster.settle(file).expect("settle");
            }
            let holder = freshest[f as usize];
            let holder_meta = cluster.site(holder).replica(file).map(|r| r.meta.clone());
            if let Some(holder_meta) = holder_meta {
                let candidate = SiteId::new(rng.gen_range(0..SITES));
                if let Some(r) = cluster.site(candidate).replica(file) {
                    if matches!(
                        holder_meta.compare(&r.meta),
                        Causality::Before | Causality::Equal
                    ) {
                        freshest[f as usize] = candidate;
                    }
                }
            }
        }
    }
    // Quiesce with a deterministic star sweep (randomized gossip can
    // livelock: each reconciliation's Parker §C increment seeds the next
    // round's conflicts).
    for f in 0..FILES {
        cluster.settle(ObjectId::new(f)).expect("settle");
        assert!(cluster.is_consistent(ObjectId::new(f)));
    }
    cluster
}

fn main() {
    let srv = run_store::<Srv>(2024);
    let full = run_store::<VersionVector>(2024);

    let s = srv.stats();
    let f = full.stats();
    println!("file store: {SITES} sites, {FILES} files, {ROUNDS} edit/gossip rounds\n");
    println!("scheme  sessions  meta+compare bytes  payload bytes  reconciles");
    println!(
        "SRV     {:<8}  {:<18}  {:<13}  {}",
        s.sessions,
        s.meta_bytes + s.compare_bytes,
        s.payload_bytes,
        s.reconciliations
    );
    println!(
        "FULL    {:<8}  {:<18}  {:<13}  {}",
        f.sessions,
        f.meta_bytes + f.compare_bytes,
        f.payload_bytes,
        f.reconciliations
    );
    let (srv_cc, full_cc) = (
        s.meta_bytes + s.compare_bytes,
        f.meta_bytes + f.compare_bytes,
    );
    println!(
        "\nconcurrency-control traffic: SRV {srv_cc} B vs FULL {full_cc} B — {:.2}× less",
        full_cc as f64 / srv_cc as f64
    );
    println!(
        "conflicts were rare ({} reconciliations / {} sessions), as optimistic replication assumes",
        s.reconciliations, s.sessions
    );

    // Show one converged file.
    let file0 = ObjectId::new(0);
    let payload = &srv.site(SiteId::new(0)).replica(file0).unwrap().payload;
    println!(
        "\nfile0 has {} lines on every replica; first lines:",
        payload.len()
    );
    for line in payload.iter().take(4) {
        println!("  {line}");
    }
    for i in 0..SITES {
        if let Some(r) = srv.site(SiteId::new(i)).replica(file0) {
            assert_eq!(&r.payload, payload, "replica {i} diverged");
        }
    }
}
