#!/usr/bin/env bash
# Three-daemon loopback smoke test: launch three durable `optrepd`
# processes on ephemeral ports, write divergent keys (including a
# conflict and a tombstone) through the `optrep` client, pull the full
# mesh to convergence with `optrep sync`, and require byte-identical
# replica digests. One daemon is then killed with SIGKILL mid-gossip
# and restarted on the same data dir: it must reboot from snapshot+WAL
# and the fleet must reconverge. Every daemon runs with
# OPTREP_OBS_JSONL set, and each trace is validated by
# `tables --check-jsonl` (schema + conservation invariants) at the end.
#
# Usage: scripts/smoke_cluster.sh   (from the repo root; builds release
# binaries if they are missing)
set -euo pipefail

BIN="${CARGO_TARGET_DIR:-target}/release"
if [[ ! -x "$BIN/optrepd" || ! -x "$BIN/optrep" || ! -x "$BIN/tables" ]]; then
    cargo build --release -p optrep-server -p optrep-bench
fi

WORK="$(mktemp -d)"
cleanup() {
    # shellcheck disable=SC2046 # pid-per-word is the point
    kill $(cat "$WORK"/*.pid 2>/dev/null) 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# start <site-letter>: launches a traced durable daemon on an ephemeral
# port and echoes its bound address (parsed from the startup line). The
# pid lands in $WORK/<site>.pid — `start` runs inside $(...), so a
# parent-shell array would never see the assignment.
start() {
    local site="$1" log="$WORK/$1.log"
    OPTREP_OBS_JSONL="$WORK/$site.jsonl" \
        "$BIN/optrepd" --site "$site" --listen 127.0.0.1:0 \
        --data-dir "$WORK/$site.data" --fsync always >"$log" 2>&1 &
    echo $! >"$WORK/$site.pid"
    for _ in $(seq 100); do
        if grep -q 'listening on' "$log"; then
            sed -n 's/.*listening on //p' "$log" | head -1
            return 0
        fi
        sleep 0.05
    done
    echo "daemon $site did not come up; log:" >&2
    cat "$log" >&2
    return 1
}

A="$(start A)"
B="$(start B)"
C="$(start C)"
echo "cluster up: A=$A B=$B C=$C"

# Divergent writes: a conflict on "shared", a tombstone on C.
"$BIN/optrep" "$A" put alpha from-a
"$BIN/optrep" "$A" put shared a-version
"$BIN/optrep" "$B" put beta from-b
"$BIN/optrep" "$B" put shared b-version
"$BIN/optrep" "$C" put gamma from-c
"$BIN/optrep" "$C" delete gamma
"$BIN/optrep" "$C" put delta from-c

# Full-mesh pulls until the three digests agree (the conflict needs a
# second round to propagate the reconciled value everywhere).
converged=""
for round in 1 2 3 4; do
    for dst in "$A" "$B" "$C"; do
        for src in "$A" "$B" "$C"; do
            [[ "$dst" == "$src" ]] || "$BIN/optrep" "$dst" sync "$src" >/dev/null
        done
    done
    da="$("$BIN/optrep" "$A" digest)"
    db="$("$BIN/optrep" "$B" digest)"
    dc="$("$BIN/optrep" "$C" digest)"
    if [[ "$da" == "$db" && "$db" == "$dc" ]]; then
        converged="$da"
        echo "converged after round $round: digest $da"
        break
    fi
done
if [[ -z "$converged" ]]; then
    echo "FAIL: digests diverge after 4 rounds: A=$da B=$db C=$dc" >&2
    exit 1
fi

# Every replica serves every key; the tombstone replicated.
for node in "$A" "$B" "$C"; do
    [[ "$("$BIN/optrep" "$node" get alpha)" == "from-a" ]]
    [[ "$("$BIN/optrep" "$node" get beta)" == "from-b" ]]
    [[ "$("$BIN/optrep" "$node" get delta)" == "from-c" ]]
    [[ "$("$BIN/optrep" "$node" get gamma)" == "(nil)" ]]
done
echo "all keys served by all replicas"

# Connection reuse: every daemon synced from its two peers repeatedly,
# so `status` must report exactly 2 dials with strictly more contacts —
# repeated syncs pipeline over one persistent connection per peer
# instead of re-dialing. One extra sweep first so the assertion holds
# even if the mesh converged in a single round. `status_field <line>
# <name>` extracts one counter from the status line.
status_field() {
    awk -v want="$2" '{for (i = 1; i < NF; i++) if ($i == want) print $(i + 1)}' <<<"$1"
}
for dst in "$A" "$B" "$C"; do
    for src in "$A" "$B" "$C"; do
        [[ "$dst" == "$src" ]] || "$BIN/optrep" "$dst" sync "$src" >/dev/null
    done
done
for node in "$A" "$B" "$C"; do
    status="$("$BIN/optrep" "$node" status)"
    dials="$(status_field "$status" conn-dials)"
    contacts="$(status_field "$status" conn-contacts)"
    live="$(status_field "$status" conn-live)"
    if [[ "$dials" != 2 || "$contacts" -le "$dials" || "$live" != 2 ]]; then
        echo "FAIL: $node re-dialed instead of reusing connections: $status" >&2
        exit 1
    fi
done
echo "connection reuse verified: 2 dials per daemon, contacts pipelined over them"

# Metrics: scrape every daemon with `optrep metrics`, validate the
# Prometheus exposition offline, and cross-check it against `status` —
# the contact counter, the latency histogram and the wire-bytes
# histogram must all have seen exactly the contacts the connection pool
# counted, and the four per-plane byte counters must sum to the
# wire-bytes histogram total (byte conservation, metrics edition).
# `prom_value <file> <sample>` extracts one sample value.
prom_value() {
    awk -v want="$2" '$1 == want { print $2 }' "$1"
}
for pair in "A $A" "B $B" "C $C"; do
    site="${pair%% *}"
    node="${pair#* }"
    scrape="$WORK/$site.prom"
    "$BIN/optrep" "$node" metrics >"$scrape"
    "$BIN/tables" --check-prom "$scrape"
    status="$("$BIN/optrep" "$node" status)"
    pool_contacts="$(status_field "$status" conn-contacts)"
    contacts="$(prom_value "$scrape" optrep_contacts_total)"
    latency_count="$(prom_value "$scrape" optrep_contact_micros_count)"
    wire_count="$(prom_value "$scrape" optrep_contact_wire_bytes_count)"
    wire_sum="$(prom_value "$scrape" optrep_contact_wire_bytes_sum)"
    bytes=$(( $(prom_value "$scrape" optrep_compare_bytes_total) \
            + $(prom_value "$scrape" optrep_meta_bytes_total) \
            + $(prom_value "$scrape" optrep_framing_bytes_total) \
            + $(prom_value "$scrape" optrep_payload_bytes_total) ))
    if [[ "$contacts" != "$pool_contacts" || "$latency_count" != "$contacts" \
          || "$wire_count" != "$contacts" ]]; then
        echo "FAIL: $site metrics disagree with status on contacts:" \
             "pool=$pool_contacts counter=$contacts latency=$latency_count" \
             "wire=$wire_count" >&2
        exit 1
    fi
    if [[ "$bytes" != "$wire_sum" || "$bytes" -le 0 ]]; then
        echo "FAIL: $site byte counters ($bytes) != wire-bytes histogram" \
             "sum ($wire_sum)" >&2
        exit 1
    fi
done
echo "metrics verified: exposition parses, contact counts match status, bytes conserve"

# The fleet view renders one table over all three daemons.
top="$("$BIN/optrep" top --iters 1 "$A" "$B" "$C")"
if [[ "$(grep -c . <<<"$top")" != 4 ]] || grep -q unreachable <<<"$top" \
    || ! grep -q "P99(MS)" <<<"$top"; then
    echo "FAIL: optrep top did not render all three daemons:" >&2
    echo "$top" >&2
    exit 1
fi
echo "optrep top rendered the fleet"

# Durability under fire: SIGKILL daemon B mid-gossip, restart it on the
# same data dir, and require the three digests to agree again — the
# recovered daemon must reboot to exactly its committed state (whole
# final contact or none; never a partial one) and then catch up.
"$BIN/optrep" "$A" put epsilon pre-crash-a
"$BIN/optrep" "$C" put zeta pre-crash-c
(
    # Gossip traffic for the kill to land in the middle of.
    for _ in $(seq 200); do
        "$BIN/optrep" "$B" sync "$A" >/dev/null 2>&1 || true
        "$BIN/optrep" "$B" sync "$C" >/dev/null 2>&1 || true
    done
) &
GOSSIP=$!
sleep 0.1
kill -9 "$(cat "$WORK/B.pid")"
kill "$GOSSIP" 2>/dev/null || true
wait "$GOSSIP" 2>/dev/null || true
B="$(start B)"
if ! grep -q ' recovered ' "$WORK/B.log"; then
    echo "FAIL: restarted B printed no recovery line; log:" >&2
    cat "$WORK/B.log" >&2
    exit 1
fi
converged=""
for round in 1 2 3 4; do
    for dst in "$A" "$B" "$C"; do
        for src in "$A" "$B" "$C"; do
            [[ "$dst" == "$src" ]] || "$BIN/optrep" "$dst" sync "$src" >/dev/null
        done
    done
    da="$("$BIN/optrep" "$A" digest)"
    db="$("$BIN/optrep" "$B" digest)"
    dc="$("$BIN/optrep" "$C" digest)"
    if [[ "$da" == "$db" && "$db" == "$dc" ]]; then
        converged="$da"
        break
    fi
done
if [[ -z "$converged" ]]; then
    echo "FAIL: digests diverge after kill -9 recovery: A=$da B=$db C=$dc" >&2
    exit 1
fi
[[ "$("$BIN/optrep" "$B" get epsilon)" == "pre-crash-a" ]]
[[ "$("$BIN/optrep" "$B" get zeta)" == "pre-crash-c" ]]
echo "kill -9 recovery verified: B rebooted from its WAL and the fleet reconverged"

# Stop the daemons gracefully (SIGTERM): each writes a final checkpoint,
# fsyncs its WAL, and flushes its trace before exiting. The daemons are
# not this shell's children (start ran in a subshell), so poll for exit
# instead of `wait`. Then validate each trace.
for site in A B C; do
    kill "$(cat "$WORK/$site.pid")" 2>/dev/null || true
done
for site in A B C; do
    for _ in $(seq 100); do
        kill -0 "$(cat "$WORK/$site.pid")" 2>/dev/null || break
        sleep 0.05
    done
done
for site in A B C; do
    "$BIN/tables" --check-jsonl "$WORK/$site.jsonl"
done
echo "smoke test passed: 3-node convergence + kill -9 recovery + 3 validated traces"
