//! Facade crate re-exporting the whole `optrep` workspace.
//!
//! This crate exists so that examples and integration tests at the workspace
//! root can exercise the full public API through a single dependency. See
//! [`optrep_core`] for the paper's algorithms, [`optrep_net`] for transports,
//! [`optrep_replication`] for the replication substrate and
//! [`optrep_workloads`] for workload generators.
pub use optrep_core as core;
pub use optrep_kv as kv;
pub use optrep_net as net;
pub use optrep_replication as replication;
pub use optrep_workloads as workloads;
